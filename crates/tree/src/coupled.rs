//! Multi-net coupled groups: several RLC trees tied together by coupling
//! capacitors, parsed from one deck.
//!
//! A *coupled deck* extends the single-net card format (see [`netlist`]) with
//! two constructs:
//!
//! * `.net <name>` opens a named net block; every ordinary card (`R`, `L`,
//!   `C`, `.input`) that follows belongs to that net until the next `.net`
//!   or `.end`;
//! * `K<label> <netA>.<nodeA> <netB>.<nodeB> <value>` places a coupling
//!   capacitor of `<value>` farads between a node of one net and a node of
//!   another. `K` cards are group-level and may appear anywhere in the deck.
//!
//! ```text
//! * a victim flanked by one aggressor
//! .net victim
//! R1 in n1 25
//! C1 n1 0 0.5p
//! .net agg
//! R1 in n1 40
//! C1 n1 0 0.3p
//! K1 victim.n1 agg.n1 0.1p
//! .end
//! ```
//!
//! Each net block is parsed with [`Netlist::parse`] and must individually be
//! a source-rooted RLC tree; coupling references are resolved against the
//! per-net node names after all blocks are read. Coupling capacitors must be
//! finite and strictly positive, must join two *different* nets, and may not
//! attach to a net's input (source) node — the ideal source pins that
//! voltage, so a coupling cap there is inert on the aggressor side and
//! unmodelable on the victim side.
//!
//! Like [`RlcTree::canonical_deck`], a [`CoupledGroup`] has a canonical form
//! ([`CoupledGroup::canonical_deck`]) with every degree of textual freedom
//! removed, used as the content-addressable identity for coupled results.

use std::collections::BTreeMap;

use rlc_units::Capacitance;

use crate::netlist::Netlist;
use crate::{NodeId, RlcTree, TreeError};

/// One net of a coupled group: its name and its parsed netlist.
#[derive(Debug, Clone)]
pub struct CoupledNet {
    name: String,
    netlist: Netlist,
}

impl CoupledNet {
    /// The net's name as declared by its `.net` card.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parsed netlist (tree plus original node names).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The net's RLC tree.
    pub fn tree(&self) -> &RlcTree {
        self.netlist.tree()
    }
}

/// One end of a coupling capacitor: a net (by index into
/// [`CoupledGroup::nets`]) and a node within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CouplingEnd {
    /// Index of the net in [`CoupledGroup::nets`].
    pub net: usize,
    /// The attached node within that net.
    pub node: NodeId,
}

/// A coupling capacitor between nodes of two different nets.
///
/// Ends are normalized so `a` orders before `b` by `(net, node)`; parallel
/// couplings between the same node pair are summed at parse time, so each
/// pair appears at most once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// The lower-ordered end.
    pub a: CouplingEnd,
    /// The higher-ordered end.
    pub b: CouplingEnd,
    /// The coupling capacitance (finite and strictly positive).
    pub capacitance: Capacitance,
}

/// A group of nets coupled by capacitors, parsed from one deck.
///
/// # Examples
///
/// ```
/// use rlc_tree::coupled::CoupledGroup;
///
/// let deck = "\
/// .net victim
/// R1 in n1 25
/// C1 n1 0 0.5p
/// .net agg
/// R1 in n1 40
/// C1 n1 0 0.3p
/// K1 victim.n1 agg.n1 0.1p
/// .end
/// ";
/// let group = CoupledGroup::parse(deck)?;
/// assert_eq!(group.nets().len(), 2);
/// assert_eq!(group.couplings().len(), 1);
/// assert_eq!(group.nets()[0].name(), "victim");
/// // The canonical form is a fixpoint.
/// let canonical = group.canonical_deck();
/// assert_eq!(CoupledGroup::parse(&canonical)?.canonical_deck(), canonical);
/// # Ok::<(), rlc_tree::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoupledGroup {
    nets: Vec<CoupledNet>,
    couplings: Vec<Coupling>,
    header: Option<String>,
}

/// An unresolved `K` card: textual refs plus the line they came from.
struct RawCoupling {
    line: usize,
    card: String,
    ref_a: String,
    ref_b: String,
    capacitance: Capacitance,
}

impl CoupledGroup {
    /// Parses a coupled deck.
    ///
    /// # Errors
    ///
    /// * [`TreeError::ParseNetlist`] for malformed cards, cards outside any
    ///   `.net` block, bad coupling values or references (unknown net,
    ///   self-coupling, unknown node, coupling to the input node);
    /// * [`TreeError::DuplicateLabel`] when two `.net` blocks share a name;
    /// * [`TreeError::NotATree`] when the deck has no `.net` block or a net
    ///   block is not a source-rooted tree.
    pub fn parse(deck: &str) -> Result<Self, TreeError> {
        let lines: Vec<&str> = deck.lines().collect();
        // Which net (by index) owns each deck line; None = group-level.
        let mut owner: Vec<Option<usize>> = vec![None; lines.len()];
        let mut names: Vec<String> = Vec::new();
        let mut raw_couplings: Vec<RawCoupling> = Vec::new();
        let mut header: Option<String> = None;
        let mut seen_card = false;
        let mut current: Option<usize> = None;

        for (idx, raw) in lines.iter().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
                if header.is_none() && !seen_card && line.starts_with('*') {
                    header = Some(line.to_owned());
                }
                continue;
            }
            seen_card = true;
            let fields: Vec<&str> = line.split_whitespace().collect();
            let card = fields[0];
            let lower = card.to_ascii_lowercase();
            if lower == ".end" {
                break;
            }
            if lower == ".net" {
                let name = fields.get(1).ok_or_else(|| TreeError::ParseNetlist {
                    line: lineno,
                    message: ".net requires a net name".into(),
                })?;
                if fields.len() > 2 {
                    return Err(TreeError::ParseNetlist {
                        line: lineno,
                        message: format!(".net takes one name, got {} fields", fields.len() - 1),
                    });
                }
                if name.contains('.') {
                    return Err(TreeError::ParseNetlist {
                        line: lineno,
                        message: format!("net name {name:?} may not contain '.'"),
                    });
                }
                if names.iter().any(|n| n == name) {
                    return Err(TreeError::DuplicateLabel {
                        label: (*name).to_owned(),
                    });
                }
                names.push((*name).to_owned());
                current = Some(names.len() - 1);
                continue;
            }
            if card.chars().next().map(|c| c.to_ascii_uppercase()) == Some('K')
                && !lower.starts_with('.')
            {
                raw_couplings.push(Self::parse_coupling_card(card, &fields, lineno)?);
                continue;
            }
            match current {
                Some(net) => owner[idx] = Some(net),
                None => {
                    return Err(TreeError::ParseNetlist {
                        line: lineno,
                        message: format!("card {card:?} appears before any .net block"),
                    })
                }
            }
        }

        if names.is_empty() {
            return Err(TreeError::NotATree {
                message: "coupled deck has no .net blocks".into(),
            });
        }

        // Re-parse each net's chunk with blank-line padding so diagnostics
        // keep their original deck line numbers.
        let mut nets = Vec::with_capacity(names.len());
        for (net_idx, name) in names.iter().enumerate() {
            let mut chunk = String::with_capacity(deck.len());
            for (idx, raw) in lines.iter().enumerate() {
                if owner[idx] == Some(net_idx) {
                    chunk.push_str(raw);
                }
                chunk.push('\n');
            }
            let netlist = Netlist::parse(&chunk)?;
            nets.push(CoupledNet {
                name: name.clone(),
                netlist,
            });
        }

        let couplings = Self::resolve_couplings(&nets, raw_couplings)?;
        Ok(Self {
            nets,
            couplings,
            header,
        })
    }

    fn parse_coupling_card(
        card: &str,
        fields: &[&str],
        lineno: usize,
    ) -> Result<RawCoupling, TreeError> {
        if fields.len() != 4 {
            return Err(TreeError::ParseNetlist {
                line: lineno,
                message: format!(
                    "expected `K<label> <net>.<node> <net>.<node> <value>`, got {} fields",
                    fields.len()
                ),
            });
        }
        for reference in [fields[1], fields[2]] {
            if !reference.contains('.') {
                return Err(TreeError::ParseNetlist {
                    line: lineno,
                    message: format!("coupling reference {reference:?} must be `<net>.<node>`"),
                });
            }
        }
        let value = fields[3];
        let c: Capacitance =
            value
                .parse()
                .map_err(|e: rlc_units::ParseQuantityError| TreeError::ParseNetlist {
                    line: lineno,
                    message: format!("bad value {value:?}: {e}"),
                })?;
        if !c.as_farads().is_finite() || c.as_farads() <= 0.0 {
            return Err(TreeError::ParseNetlist {
                line: lineno,
                message: format!(
                    "coupling capacitor {card} value {value:?} must be finite and positive"
                ),
            });
        }
        Ok(RawCoupling {
            line: lineno,
            card: card.to_owned(),
            ref_a: fields[1].to_owned(),
            ref_b: fields[2].to_owned(),
            capacitance: c,
        })
    }

    fn resolve_couplings(
        nets: &[CoupledNet],
        raw: Vec<RawCoupling>,
    ) -> Result<Vec<Coupling>, TreeError> {
        let index: BTreeMap<&str, usize> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| (net.name(), i))
            .collect();
        let resolve =
            |reference: &str, card: &str, line: usize| -> Result<CouplingEnd, TreeError> {
                let (net_name, node_name) = reference.split_once('.').unwrap_or((reference, ""));
                let net = *index.get(net_name).ok_or_else(|| TreeError::ParseNetlist {
                    line,
                    message: format!("coupling {card} references unknown net {net_name:?}"),
                })?;
                let node =
                    nets[net]
                        .netlist()
                        .node(node_name)
                        .ok_or_else(|| TreeError::ParseNetlist {
                            line,
                            message: format!(
                                "coupling {card} references node {node_name:?} which is not a \
                         section node of net {net_name:?}"
                            ),
                        })?;
                Ok(CouplingEnd { net, node })
            };

        // Sum parallel couplings between the same node pair, like shunt
        // capacitors in a single-net deck.
        let mut merged: Vec<Coupling> = Vec::with_capacity(raw.len());
        for rc in raw {
            let a = resolve(&rc.ref_a, &rc.card, rc.line)?;
            let b = resolve(&rc.ref_b, &rc.card, rc.line)?;
            if a.net == b.net {
                return Err(TreeError::ParseNetlist {
                    line: rc.line,
                    message: format!(
                        "coupling {} joins net {:?} to itself",
                        rc.card,
                        nets[a.net].name()
                    ),
                });
            }
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            match merged.iter_mut().find(|c| c.a == a && c.b == b) {
                Some(existing) => existing.capacitance += rc.capacitance,
                None => merged.push(Coupling {
                    a,
                    b,
                    capacitance: rc.capacitance,
                }),
            }
        }
        merged.sort_by_key(|c| (c.a, c.b));
        Ok(merged)
    }

    /// The group's nets in declaration order.
    pub fn nets(&self) -> &[CoupledNet] {
        &self.nets
    }

    /// The coupling capacitors, normalized (ends ordered, parallel caps
    /// summed) and sorted by `(a, b)`.
    pub fn couplings(&self) -> &[Coupling] {
        &self.couplings
    }

    /// The deck-level header comment, if any (first `*` line before any
    /// card), verbatim.
    pub fn header(&self) -> Option<&str> {
        self.header.as_deref()
    }

    /// Looks up a net index by name.
    pub fn net_index(&self, name: &str) -> Option<usize> {
        self.nets.iter().position(|n| n.name() == name)
    }

    /// The couplings that touch net `net`, as `(this end, far end,
    /// capacitance)` triples.
    pub fn couplings_of(
        &self,
        net: usize,
    ) -> impl Iterator<Item = (CouplingEnd, CouplingEnd, Capacitance)> + '_ {
        self.couplings.iter().filter_map(move |c| {
            if c.a.net == net {
                Some((c.a, c.b, c.capacitance))
            } else if c.b.net == net {
                Some((c.b, c.a, c.capacitance))
            } else {
                None
            }
        })
    }

    /// The canonical form of this group: the content-addressable identity
    /// used by result caches, mirroring [`RlcTree::canonical_deck`].
    ///
    /// * nets are emitted in declaration order under their declared names,
    ///   each as its tree's canonical card body (nodes renamed `n{index}`,
    ///   values in `{:e}` base SI units, root parent named `in`);
    /// * coupling capacitors follow, renumbered `K1…`, with canonical
    ///   `<net>.n{index}` references, normalized end order, parallel caps
    ///   summed, and sorted;
    /// * comments are dropped and the deck ends with `.end`.
    ///
    /// For groups in the parser's image the form is lossless and a
    /// fixpoint: `parse(g.canonical_deck())` rebuilds the same group and
    /// canonicalizes to the same bytes.
    pub fn canonical_deck(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        for net in &self.nets {
            let _ = writeln!(out, ".net {}", net.name());
            let body = net.tree().canonical_deck();
            let body = body
                .strip_prefix(".input in\n")
                .unwrap_or(&body)
                .strip_suffix(".end\n")
                .unwrap_or(&body);
            out.push_str(body);
        }
        for (idx, c) in self.couplings.iter().enumerate() {
            let _ = writeln!(
                out,
                "K{} {}.n{} {}.n{} {:e}",
                idx + 1,
                self.nets[c.a.net].name(),
                c.a.node.index(),
                self.nets[c.b.net].name(),
                c.b.node.index(),
                c.capacitance.as_farads()
            );
        }
        out.push_str(".end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_NET_DECK: &str = "\
* bus pair
.net victim
R1 in n1 25
C1 n1 0 0.5p
R2 n1 n2 25
C2 n2 0 0.5p
.net agg
R1 in a1 40
C1 a1 0 0.3p
K1 victim.n2 agg.a1 0.1p
.end
";

    #[test]
    fn parses_two_net_group() {
        let group = CoupledGroup::parse(TWO_NET_DECK).unwrap();
        assert_eq!(group.nets().len(), 2);
        assert_eq!(group.nets()[0].name(), "victim");
        assert_eq!(group.nets()[1].name(), "agg");
        assert_eq!(group.nets()[0].tree().len(), 2);
        assert_eq!(group.nets()[1].tree().len(), 1);
        assert_eq!(group.couplings().len(), 1);
        let c = group.couplings()[0];
        assert_eq!(c.a.net, 0);
        assert_eq!(c.b.net, 1);
        assert!((c.capacitance.as_picofarads() - 0.1).abs() < 1e-12);
        assert_eq!(group.header(), Some("* bus pair"));
        assert_eq!(group.net_index("agg"), Some(1));
        assert_eq!(group.net_index("nope"), None);
    }

    #[test]
    fn single_net_group_without_couplings_is_fine() {
        let deck = ".net solo\nR1 in n1 10\nC1 n1 0 1p\n";
        let group = CoupledGroup::parse(deck).unwrap();
        assert_eq!(group.nets().len(), 1);
        assert!(group.couplings().is_empty());
    }

    #[test]
    fn k_cards_may_appear_anywhere() {
        let deck = "\
K1 a.n1 b.n1 0.1p
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in n1 20
C1 n1 0 1p
";
        let group = CoupledGroup::parse(deck).unwrap();
        assert_eq!(group.couplings().len(), 1);
    }

    #[test]
    fn parallel_couplings_sum_and_ends_normalize() {
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in m1 20
C1 m1 0 1p
K1 b.m1 a.n1 0.1p
K2 a.n1 b.m1 0.2p
";
        let group = CoupledGroup::parse(deck).unwrap();
        assert_eq!(group.couplings().len(), 1);
        let c = group.couplings()[0];
        assert_eq!((c.a.net, c.b.net), (0, 1));
        assert!((c.capacitance.as_picofarads() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn card_before_net_block_is_rejected() {
        let err =
            CoupledGroup::parse("R1 in n1 10\n.net a\nR1 in n1 10\nC1 n1 0 1p\n").unwrap_err();
        assert!(err.to_string().contains("before any .net"), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn duplicate_net_name_is_rejected() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net a\nR1 in n1 10\n";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(matches!(err, TreeError::DuplicateLabel { .. }), "{err}");
    }

    #[test]
    fn unknown_net_reference_is_rejected() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\nK1 a.n1 ghost.n1 0.1p\n";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("unknown net \"ghost\""), "{err}");
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn self_coupling_is_rejected() {
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
R2 n1 n2 10
C2 n2 0 1p
K1 a.n1 a.n2 0.1p
";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("itself"), "{err}");
    }

    #[test]
    fn dangling_node_reference_is_rejected() {
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in m1 20
C1 m1 0 1p
K1 a.n9 b.m1 0.1p
";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("not a section node"), "{err}");
    }

    #[test]
    fn coupling_to_the_input_node_is_dangling() {
        // `in` is the source, not a section node; the names map excludes it.
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in m1 20
C1 m1 0 1p
K1 a.in b.m1 0.1p
";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("not a section node"), "{err}");
    }

    #[test]
    fn non_positive_or_non_finite_coupling_values_are_rejected() {
        for value in ["0", "-0.1p", "1e999", "NaN"] {
            let deck = format!(
                ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net b\nR1 in m1 20\nC1 m1 0 1p\nK1 a.n1 b.m1 {value}\n"
            );
            let err = CoupledGroup::parse(&deck).unwrap_err();
            assert!(
                matches!(err, TreeError::ParseNetlist { .. }),
                "value {value:?} gave {err}"
            );
        }
        let deck =
            ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net b\nR1 in m1 20\nC1 m1 0 1p\nK1 a.n1 b.m1 0\n";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("finite and positive"), "{err}");
    }

    #[test]
    fn malformed_k_cards_are_rejected_with_line_numbers() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\nK1 a.n1 0.1p\n";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(err.to_string().contains("got 3 fields"), "{err}");

        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\nK1 a.n1 bn1 0.1p\n";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("must be `<net>.<node>`"), "{err}");
    }

    #[test]
    fn net_chunk_errors_keep_deck_line_numbers() {
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in m1 bogus
C1 m1 0 1p
";
        let err = CoupledGroup::parse(deck).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn empty_deck_and_missing_net_name_are_rejected() {
        let err = CoupledGroup::parse("* nothing\n").unwrap_err();
        assert!(matches!(err, TreeError::NotATree { .. }), "{err}");

        let err = CoupledGroup::parse(".net\nR1 in n1 10\n").unwrap_err();
        assert!(err.to_string().contains("requires a net name"), "{err}");

        let err = CoupledGroup::parse(".net a b\nR1 in n1 10\n").unwrap_err();
        assert!(err.to_string().contains("one name"), "{err}");

        let err = CoupledGroup::parse(".net a.b\nR1 in n1 10\n").unwrap_err();
        assert!(err.to_string().contains("may not contain"), "{err}");
    }

    #[test]
    fn end_card_terminates_the_group() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\n.end\ngarbage here\n";
        let group = CoupledGroup::parse(deck).unwrap();
        assert_eq!(group.nets().len(), 1);
    }

    #[test]
    fn canonical_deck_is_a_fixpoint_and_spelling_invariant() {
        let group = CoupledGroup::parse(TWO_NET_DECK).unwrap();
        let canonical = group.canonical_deck();
        let reparsed = CoupledGroup::parse(&canonical).unwrap();
        assert_eq!(reparsed.canonical_deck(), canonical);
        assert_eq!(reparsed.nets().len(), group.nets().len());
        assert_eq!(reparsed.couplings(), group.couplings());

        // A respelling of the same group shares the identity.
        let respelled = "\
; prose differs, labels differ, values respelled
.net victim
Rd in  x  2.5e1
Cd x 0 500f
Re x y 25
Ce y 0 0.5p
.net agg
Rf in z 40
Cf z 0 3e-1p
Kx agg.z victim.y 100f
.end
";
        let other = CoupledGroup::parse(respelled).unwrap();
        assert_eq!(other.canonical_deck(), canonical);
    }

    #[test]
    fn canonical_deck_shape() {
        let group = CoupledGroup::parse(TWO_NET_DECK).unwrap();
        let canonical = group.canonical_deck();
        assert!(canonical.starts_with(".net victim\n"), "{canonical}");
        assert!(canonical.contains("\n.net agg\n"), "{canonical}");
        assert!(
            canonical.contains("K1 victim.n1 agg.n0 1e-13\n"),
            "{canonical}"
        );
        assert!(canonical.ends_with(".end\n"), "{canonical}");
        assert!(!canonical.contains(".input"), "{canonical}");
        assert!(!canonical.contains('*'), "{canonical}");
    }
}
