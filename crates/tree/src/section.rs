//! A single RLC section.

use core::fmt;

use rlc_units::{Capacitance, Inductance, Resistance};

/// One section of an RLC tree: a series resistance and inductance from the
/// parent node, terminated by a node with a shunt capacitance to ground.
///
/// ```text
///   parent ──[ R ]──[ L ]──●── child sections…
///                          │
///                         ═╧═ C
///                          ⏚
/// ```
///
/// A pure-RC section has zero inductance; a lossless LC section has zero
/// resistance. Negative element values are rejected by [`RlcSection::new`].
///
/// # Examples
///
/// ```
/// use rlc_tree::RlcSection;
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(25.0),
///     Inductance::from_nanohenries(5.0),
///     Capacitance::from_picofarads(0.5),
/// );
/// assert_eq!(s.resistance().as_ohms(), 25.0);
/// assert!(!s.is_rc());
///
/// let rc = RlcSection::rc(Resistance::from_ohms(25.0), Capacitance::from_picofarads(0.5));
/// assert!(rc.is_rc());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RlcSection {
    resistance: Resistance,
    inductance: Inductance,
    capacitance: Capacitance,
}

impl RlcSection {
    /// Creates a section from its three element values.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or non-finite. (Zero values are fine:
    /// zero-impedance sections are how general trees are reduced to binary
    /// ones, per the paper's Appendix.)
    pub fn new(resistance: Resistance, inductance: Inductance, capacitance: Capacitance) -> Self {
        assert!(
            resistance.as_ohms() >= 0.0 && resistance.is_finite(),
            "section resistance must be finite and non-negative, got {resistance}"
        );
        assert!(
            inductance.as_henries() >= 0.0 && inductance.is_finite(),
            "section inductance must be finite and non-negative, got {inductance}"
        );
        assert!(
            capacitance.as_farads() >= 0.0 && capacitance.is_finite(),
            "section capacitance must be finite and non-negative, got {capacitance}"
        );
        Self {
            resistance,
            inductance,
            capacitance,
        }
    }

    /// Creates a pure-RC section (zero inductance).
    pub fn rc(resistance: Resistance, capacitance: Capacitance) -> Self {
        Self::new(resistance, Inductance::ZERO, capacitance)
    }

    /// Creates a zero-impedance section (used to binarize general trees).
    pub fn zero() -> Self {
        Self::default()
    }

    /// The series resistance.
    #[inline]
    pub fn resistance(&self) -> Resistance {
        self.resistance
    }

    /// The series inductance.
    #[inline]
    pub fn inductance(&self) -> Inductance {
        self.inductance
    }

    /// The shunt capacitance at the section's downstream node.
    #[inline]
    pub fn capacitance(&self) -> Capacitance {
        self.capacitance
    }

    /// Returns `true` if the section has no inductance.
    #[inline]
    pub fn is_rc(&self) -> bool {
        self.inductance == Inductance::ZERO
    }

    /// Returns a copy with all three impedance values scaled by `factor`.
    ///
    /// Scaling R, L **and** C by the same factor is how the paper's `asym`
    /// parameter unbalances a tree (Section V-B): `asym = 2` makes the left
    /// branch twice the impedance of the right branch.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(
            self.resistance * factor,
            self.inductance * factor,
            self.capacitance * factor,
        )
    }

    /// Returns a copy with the characteristic impedance scaled by `factor`:
    /// series R and L multiply by it, shunt C divides by it — the effect of
    /// making the wire `factor` times narrower. This is the paper's `asym`
    /// scaling (Section V-B): "the impedance of the left branch is always
    /// twice the impedance of the right branch" for `asym = 2`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn impedance_scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "impedance factor must be finite and positive, got {factor}"
        );
        Self::new(
            self.resistance * factor,
            self.inductance * factor,
            self.capacitance / factor,
        )
    }

    /// Returns a copy with only the series impedances (R and L) scaled.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn series_scaled(&self, factor: f64) -> Self {
        Self::new(
            self.resistance * factor,
            self.inductance * factor,
            self.capacitance,
        )
    }

    /// Returns a copy with the inductance replaced.
    pub fn with_inductance(&self, inductance: Inductance) -> Self {
        Self::new(self.resistance, inductance, self.capacitance)
    }

    /// Returns a copy with an extra capacitance added at the node (e.g. a
    /// sink load).
    pub fn with_added_capacitance(&self, extra: Capacitance) -> Self {
        Self::new(self.resistance, self.inductance, self.capacitance + extra)
    }

    /// Damping factor `ζ = (R/2)·√(C/L)` of this section driven alone.
    ///
    /// Returns infinity for an RC section (`L = 0`): the response is purely
    /// overdamped, consistent with ζ → ∞ in the paper's model.
    pub fn damping_factor(&self) -> f64 {
        let rc = (self.resistance * self.capacitance).as_seconds();
        let lc = (self.inductance * self.capacitance).sqrt().as_seconds();
        if lc == 0.0 {
            if rc == 0.0 {
                // No dynamics at all; call it critically damped.
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            rc / (2.0 * lc)
        }
    }
}

impl fmt::Display for RlcSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R={} L={} C={}",
            self.resistance, self.inductance, self.capacitance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_henries(l),
            Capacitance::from_farads(c),
        )
    }

    #[test]
    fn accessors_round_trip() {
        let s = section(25.0, 5e-9, 0.5e-12);
        assert_eq!(s.resistance().as_ohms(), 25.0);
        assert_eq!(s.inductance().as_henries(), 5e-9);
        assert_eq!(s.capacitance().as_farads(), 0.5e-12);
    }

    #[test]
    fn rc_constructor_has_zero_inductance() {
        let s = RlcSection::rc(Resistance::from_ohms(1.0), Capacitance::from_farads(1.0));
        assert!(s.is_rc());
        assert_eq!(s.inductance(), Inductance::ZERO);
    }

    #[test]
    fn zero_section_is_all_zero() {
        let z = RlcSection::zero();
        assert_eq!(z.resistance().as_ohms(), 0.0);
        assert_eq!(z.inductance().as_henries(), 0.0);
        assert_eq!(z.capacitance().as_farads(), 0.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be finite and non-negative")]
    fn rejects_negative_resistance() {
        let _ = section(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "inductance must be finite and non-negative")]
    fn rejects_nan_inductance() {
        let _ = section(1.0, f64::NAN, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitance must be finite and non-negative")]
    fn rejects_infinite_capacitance() {
        let _ = section(1.0, 0.0, f64::INFINITY);
    }

    #[test]
    fn scaled_scales_all_three() {
        let s = section(2.0, 4.0, 8.0).scaled(0.5);
        assert_eq!(s.resistance().as_ohms(), 1.0);
        assert_eq!(s.inductance().as_henries(), 2.0);
        assert_eq!(s.capacitance().as_farads(), 4.0);
    }

    #[test]
    fn series_scaled_leaves_capacitance() {
        let s = section(2.0, 4.0, 8.0).series_scaled(2.0);
        assert_eq!(s.resistance().as_ohms(), 4.0);
        assert_eq!(s.inductance().as_henries(), 8.0);
        assert_eq!(s.capacitance().as_farads(), 8.0);
    }

    #[test]
    fn with_modifiers() {
        let s = section(1.0, 1.0, 1.0)
            .with_inductance(Inductance::from_henries(9.0))
            .with_added_capacitance(Capacitance::from_farads(2.0));
        assert_eq!(s.inductance().as_henries(), 9.0);
        assert_eq!(s.capacitance().as_farads(), 3.0);
    }

    #[test]
    fn damping_factor_single_section() {
        // R=2, L=1, C=1 → ζ = (2/2)·√(1/1) = 1 (critically damped)
        assert_eq!(section(2.0, 1.0, 1.0).damping_factor(), 1.0);
        // Lower R → underdamped
        assert!(section(1.0, 1.0, 1.0).damping_factor() < 1.0);
        // RC section → infinite ζ
        assert_eq!(section(1.0, 0.0, 1.0).damping_factor(), f64::INFINITY);
        // Degenerate zero section → defined as 1.0
        assert_eq!(RlcSection::zero().damping_factor(), 1.0);
    }

    #[test]
    fn display_is_readable() {
        let s = section(25.0, 5e-9, 0.5e-12);
        let text = s.to_string();
        assert!(text.contains("25 Ω"), "{text}");
        assert!(text.contains("5 nH"), "{text}");
        assert!(text.contains("500 fF"), "{text}");
    }
}
