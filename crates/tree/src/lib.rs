//! RLC interconnect trees: the structural substrate of the Equivalent Elmore
//! Delay workspace.
//!
//! An *RLC tree* (Ismail–Friedman–Neves, TCAD 2000, Fig. 5) models a VLSI
//! interconnect net: a voltage source drives a tree of *sections*, where each
//! section is a series resistance `R` and inductance `L` leading to a node
//! with a shunt capacitance `C` to ground. Signal sinks are the leaves.
//!
//! This crate provides:
//!
//! * [`RlcSection`] — one `R`/`L`/`C` section;
//! * [`RlcTree`] — an arena-allocated tree of sections with O(1) parent and
//!   child access, traversal orders, and path queries;
//! * [`FlatTree`] / [`FlatForest`] — packed, topologically-sorted
//!   structure-of-arrays mirrors (single tree / multi-net arena) that the
//!   O(n) moment kernels sweep as branch-light linear loops;
//! * [`TreeBuilder`] — fluent construction of hand-shaped trees;
//! * [`topology`] — canonical generators: single lines, balanced trees of
//!   any branching factor, the asymmetric-impedance family parameterized by
//!   the paper's `asym` ratio, the paper's Fig. 5 and Fig. 8 example
//!   circuits, and deterministic pseudo-random trees;
//! * [`wire`] — per-unit-length wire parameters with technology presets and
//!   segmentation of physical wires into section chains;
//! * [`netlist`] — a SPICE-like netlist parser and writer, so trees can be
//!   exchanged with external tools;
//! * [`synth`] — synthesis decks: a netlist plus `.lib` buffer-library,
//!   `.driver`, and `.require` constraint cards for the `rlc-synth`
//!   optimizer.
//!
//! # Examples
//!
//! Build the two-section line `in ─[R,L]─ n1 ─[R,L]─ n2` and inspect it:
//!
//! ```
//! use rlc_tree::{RlcSection, RlcTree};
//! use rlc_units::{Resistance, Inductance, Capacitance};
//!
//! let section = RlcSection::new(
//!     Resistance::from_ohms(25.0),
//!     Inductance::from_nanohenries(5.0),
//!     Capacitance::from_picofarads(0.5),
//! );
//!
//! let mut tree = RlcTree::new();
//! let n1 = tree.add_root_section(section);
//! let n2 = tree.add_section(n1, section);
//!
//! assert_eq!(tree.len(), 2);
//! assert_eq!(tree.parent(n2), Some(n1));
//! assert_eq!(tree.leaves().collect::<Vec<_>>(), vec![n2]);
//! assert_eq!(tree.path_from_root(n2), vec![n1, n2]);
//! ```

mod builder;
pub mod coupled;
mod error;
pub mod flat;
pub mod netlist;
mod section;
pub mod synth;
pub mod topology;
mod tree;
pub mod wire;

pub use builder::TreeBuilder;
pub use error::TreeError;
pub use flat::{FlatForest, FlatTree};
pub use section::RlcSection;
pub use tree::{NodeId, RlcTree};
