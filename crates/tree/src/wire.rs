//! Physical wire models: per-unit-length parameters and segmentation.
//!
//! The paper's circuits are lumped trees, but the sections model *distributed
//! wires*. This module carries the per-unit-length electrical parameters of a
//! wire and converts a physical length into a chain of lumped
//! [`RlcSection`]s — the standard discretization used when applying lumped
//! delay models to real interconnect.

use rlc_units::{Capacitance, Inductance, Resistance};

use crate::{NodeId, RlcSection, RlcTree};

/// Per-unit-length electrical parameters of an on-chip wire.
///
/// Lengths are expressed in micrometers throughout, matching layout
/// conventions.
///
/// # Examples
///
/// ```
/// use rlc_tree::wire::WireModel;
///
/// let wire = WireModel::IBM_COPPER_GLOBAL;
/// // A 1 mm wire split into 10 lumped sections:
/// let sections = wire.lump(1000.0, 10);
/// assert_eq!(sections.len(), 10);
/// let total_r: f64 = sections.iter().map(|s| s.resistance().as_ohms()).sum();
/// assert!((total_r - wire.resistance_per_um().as_ohms() * 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    r_per_um: Resistance,
    l_per_um: Inductance,
    c_per_um: Capacitance,
}

impl WireModel {
    /// A wide copper global-layer wire representative of the paper's era
    /// (late-1990s 0.25 µm CMOS): 0.015 Ω/µm, 0.246 pH/µm, 0.176 fF/µm —
    /// the parameter set used in the authors' companion repeater-insertion
    /// study.
    pub const IBM_COPPER_GLOBAL: Self = Self {
        r_per_um: Resistance::from_ohms(0.015),
        l_per_um: Inductance::from_henries(0.246e-12),
        c_per_um: Capacitance::from_farads(0.176e-15),
    };

    /// A minimum-width signal wire on a lower metal layer: ten times the
    /// resistance of the global wire, slightly lower inductance, similar
    /// capacitance. Strongly overdamped — RC-like behaviour.
    pub const MINIMUM_WIDTH_SIGNAL: Self = Self {
        r_per_um: Resistance::from_ohms(0.15),
        l_per_um: Inductance::from_henries(0.2e-12),
        c_per_um: Capacitance::from_farads(0.15e-15),
    };

    /// A very wide, low-resistance clock spine: 0.005 Ω/µm. Clock
    /// distribution networks are where inductive effects matter most
    /// (paper Section I).
    pub const CLOCK_SPINE: Self = Self {
        r_per_um: Resistance::from_ohms(0.005),
        l_per_um: Inductance::from_henries(0.3e-12),
        c_per_um: Capacitance::from_farads(0.2e-15),
    };

    /// Creates a wire model from explicit per-micrometer parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    pub fn new(r_per_um: Resistance, l_per_um: Inductance, c_per_um: Capacitance) -> Self {
        assert!(
            r_per_um.as_ohms() >= 0.0 && r_per_um.is_finite(),
            "resistance per µm must be finite and non-negative"
        );
        assert!(
            l_per_um.as_henries() >= 0.0 && l_per_um.is_finite(),
            "inductance per µm must be finite and non-negative"
        );
        assert!(
            c_per_um.as_farads() >= 0.0 && c_per_um.is_finite(),
            "capacitance per µm must be finite and non-negative"
        );
        Self {
            r_per_um,
            l_per_um,
            c_per_um,
        }
    }

    /// Resistance per micrometer.
    pub fn resistance_per_um(&self) -> Resistance {
        self.r_per_um
    }

    /// Inductance per micrometer.
    pub fn inductance_per_um(&self) -> Inductance {
        self.l_per_um
    }

    /// Capacitance per micrometer.
    pub fn capacitance_per_um(&self) -> Capacitance {
        self.c_per_um
    }

    /// Returns a copy scaled for a wire `width_factor` times wider:
    /// resistance divides by the factor, capacitance multiplies, inductance
    /// is (to first order) unchanged.
    ///
    /// This is the knob wire-sizing optimizations turn.
    ///
    /// # Panics
    ///
    /// Panics if `width_factor` is not finite and positive.
    pub fn widened(&self, width_factor: f64) -> Self {
        assert!(
            width_factor.is_finite() && width_factor > 0.0,
            "width factor must be finite and positive, got {width_factor}"
        );
        Self::new(
            self.r_per_um / width_factor,
            self.l_per_um,
            self.c_per_um * width_factor,
        )
    }

    /// Total lumped section equivalent to `length_um` of this wire.
    ///
    /// # Panics
    ///
    /// Panics if `length_um` is negative or non-finite.
    pub fn section(&self, length_um: f64) -> RlcSection {
        assert!(
            length_um.is_finite() && length_um >= 0.0,
            "wire length must be finite and non-negative, got {length_um}"
        );
        RlcSection::new(
            self.r_per_um * length_um,
            self.l_per_um * length_um,
            self.c_per_um * length_um,
        )
    }

    /// Splits `length_um` of wire into `segments` equal lumped sections.
    ///
    /// More segments approximate the distributed wire better; the totals
    /// (ΣR, ΣL, ΣC) are independent of the segment count.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `length_um` is invalid.
    pub fn lump(&self, length_um: f64, segments: usize) -> Vec<RlcSection> {
        assert!(segments > 0, "segment count must be positive");
        let per = self.section(length_um / segments as f64);
        vec![per; segments]
    }

    /// Appends `length_um` of this wire as a `segments`-section chain below
    /// `parent` in `tree` (or at the source when `parent` is `None`).
    /// Returns the far-end node.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`, `length_um` is invalid, or `parent` does
    /// not belong to `tree`.
    pub fn route(
        &self,
        tree: &mut RlcTree,
        parent: Option<NodeId>,
        length_um: f64,
        segments: usize,
    ) -> NodeId {
        let sections = self.lump(length_um, segments);
        let mut node = match parent {
            Some(p) => tree.add_section(p, sections[0]),
            None => tree.add_root_section(sections[0]),
        };
        for &s in &sections[1..] {
            node = tree.add_section(node, s);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for preset in [
            WireModel::IBM_COPPER_GLOBAL,
            WireModel::MINIMUM_WIDTH_SIGNAL,
            WireModel::CLOCK_SPINE,
        ] {
            assert!(preset.resistance_per_um().as_ohms() > 0.0);
            assert!(preset.inductance_per_um().as_henries() > 0.0);
            assert!(preset.capacitance_per_um().as_farads() > 0.0);
        }
        // Clock spine is the least resistive — most inductance-prone.
        assert!(
            WireModel::CLOCK_SPINE.resistance_per_um()
                < WireModel::IBM_COPPER_GLOBAL.resistance_per_um()
        );
    }

    #[test]
    fn section_scales_linearly_with_length() {
        let w = WireModel::IBM_COPPER_GLOBAL;
        let s1 = w.section(100.0);
        let s2 = w.section(200.0);
        assert!((s2.resistance().as_ohms() - 2.0 * s1.resistance().as_ohms()).abs() < 1e-12);
        assert!((s2.capacitance().as_farads() - 2.0 * s1.capacitance().as_farads()).abs() < 1e-27);
    }

    #[test]
    fn lump_preserves_totals() {
        let w = WireModel::MINIMUM_WIDTH_SIGNAL;
        for segments in [1, 3, 10, 37] {
            let parts = w.lump(500.0, segments);
            assert_eq!(parts.len(), segments);
            let total_r: f64 = parts.iter().map(|s| s.resistance().as_ohms()).sum();
            let total_c: f64 = parts.iter().map(|s| s.capacitance().as_farads()).sum();
            assert!((total_r - 75.0).abs() < 1e-9, "{segments} segs");
            assert!((total_c - 75.0e-15).abs() < 1e-25, "{segments} segs");
        }
    }

    #[test]
    fn widened_moves_r_down_c_up() {
        let w = WireModel::IBM_COPPER_GLOBAL.widened(2.0);
        assert!(
            (w.resistance_per_um().as_ohms()
                - WireModel::IBM_COPPER_GLOBAL.resistance_per_um().as_ohms() / 2.0)
                .abs()
                < 1e-15
        );
        assert!(
            (w.capacitance_per_um().as_farads()
                - WireModel::IBM_COPPER_GLOBAL
                    .capacitance_per_um()
                    .as_farads()
                    * 2.0)
                .abs()
                < 1e-27
        );
        assert_eq!(
            w.inductance_per_um(),
            WireModel::IBM_COPPER_GLOBAL.inductance_per_um()
        );
    }

    #[test]
    #[should_panic(expected = "width factor")]
    fn widened_rejects_zero() {
        let _ = WireModel::IBM_COPPER_GLOBAL.widened(0.0);
    }

    #[test]
    #[should_panic(expected = "wire length")]
    fn section_rejects_negative_length() {
        let _ = WireModel::IBM_COPPER_GLOBAL.section(-1.0);
    }

    #[test]
    fn route_builds_chain_in_tree() {
        let w = WireModel::IBM_COPPER_GLOBAL;
        let mut tree = RlcTree::new();
        let mid = w.route(&mut tree, None, 1000.0, 4);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.depth(mid), 4);
        // Branch two wires from the midpoint.
        let a = w.route(&mut tree, Some(mid), 500.0, 2);
        let b = w.route(&mut tree, Some(mid), 500.0, 2);
        assert_eq!(tree.len(), 8);
        assert_eq!(tree.children(mid).len(), 2);
        assert!(tree.is_leaf(a) && tree.is_leaf(b));
    }

    #[test]
    fn zero_length_wire_is_zero_section() {
        let s = WireModel::CLOCK_SPINE.section(0.0);
        assert_eq!(s, RlcSection::zero());
    }
}
