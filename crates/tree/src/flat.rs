//! Flat, topologically-sorted structure-of-arrays tree layouts.
//!
//! [`RlcTree`] is an arena of nodes with parent/child `Vec` links — ideal
//! for construction and editing, but the O(n) moment sweeps spend most of
//! their time chasing pointers through it. This module provides the packed
//! mirror the kernels actually want:
//!
//! * [`FlatTree`] — one tree as parallel `parent`/`R`/`L`/`C` arrays plus a
//!   CSR child table, all indexed by the *same* dense indices as the source
//!   arena (`flat index i` ≡ `NodeId::index() == i`).
//! * [`FlatForest`] — many trees packed end-to-end in one set of arrays, so
//!   a whole batch (or every Miller-folded variant of a coupled group) is
//!   analyzed from a single allocation-free buffer pool.
//!
//! # Index invariants
//!
//! Both layouts inherit and *preserve* the arena's ordering guarantees
//! (see [`RlcTree`]):
//!
//! 1. **Topological order:** `parent[i] < i` for every non-root `i`
//!    (roots carry [`NO_PARENT`]). A plain ascending index sweep visits
//!    parents before children; a descending sweep visits children before
//!    parents. In a [`FlatForest`] this holds *globally* because nets are
//!    packed in submission order and parents are rebased per net.
//! 2. **Sorted adjacency:** each CSR child group `children_of(i)` is in
//!    ascending index order — exactly the arena's insertion order — and the
//!    `leaves` list is ascending. This is what makes the flat kernels
//!    *bit-identical* to the arena walkers: float accumulation visits the
//!    same operands in the same order.
//!
//! # Lifetime rules
//!
//! A flat layout is a **snapshot**: it holds no reference to the source
//! tree and does not observe later arena edits. Callers either rebuild via
//! [`FlatTree::rebuild_from`] (which reuses every buffer) or mirror edits
//! explicitly with [`FlatTree::set_section`] / [`FlatForest::bump_cap`].
//! Structural edits (adding sections) always require a rebuild/re-push.

use rlc_units::{Capacitance, Inductance, Resistance};

use crate::section::RlcSection;
use crate::tree::{NodeId, RlcTree};

/// Parent marker for root sections (driven directly by the source).
pub const NO_PARENT: u32 = u32::MAX;

/// Many RLC trees packed end-to-end in one structure-of-arrays arena.
///
/// Global node indices run `0..len()`; net `k` owns the contiguous range
/// [`net_range(k)`](Self::net_range). All per-node arrays (including the
/// CSR child table and the leaf list) use global indices, and the
/// topological invariant `parent[i] < i` holds across the whole forest.
///
/// # Examples
///
/// ```
/// use rlc_tree::flat::FlatForest;
/// use rlc_tree::{topology, RlcSection};
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(10.0),
///     Inductance::from_nanohenries(1.0),
///     Capacitance::from_picofarads(0.1),
/// );
/// let (line, _) = topology::single_line(3, s);
/// let tree = topology::balanced_tree(3, 2, s);
///
/// let mut forest = FlatForest::new();
/// let a = forest.push_tree(&line);
/// let b = forest.push_tree(&tree);
/// assert_eq!(forest.net_count(), 2);
/// assert_eq!(forest.net_range(a), 0..3);
/// assert_eq!(forest.net_range(b), 3..3 + tree.len());
/// // Reuse the buffers for the next batch.
/// forest.clear();
/// assert_eq!(forest.len(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatForest {
    /// Global parent index per node; [`NO_PARENT`] for net roots.
    parent: Vec<u32>,
    res: Vec<Resistance>,
    ind: Vec<Inductance>,
    cap: Vec<Capacitance>,
    /// CSR offsets into `child_index`; always `len() + 1` entries (a lone
    /// `0` when empty), so `children_of` needs no branch.
    child_start: Vec<u32>,
    /// Concatenated child groups, ascending within each group.
    child_index: Vec<u32>,
    /// Net boundaries: net `k` is `bounds[k]..bounds[k + 1]`.
    bounds: Vec<u32>,
    /// Global leaf indices, ascending.
    leaves: Vec<u32>,
    /// Leaf-list boundaries per net, parallel to `bounds`.
    leaf_bounds: Vec<u32>,
}

impl FlatForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self {
            child_start: vec![0],
            bounds: vec![0],
            leaf_bounds: vec![0],
            ..Self::default()
        }
    }

    /// Removes every net but keeps all buffer capacity for reuse.
    pub fn clear(&mut self) {
        self.parent.clear();
        self.res.clear();
        self.ind.clear();
        self.cap.clear();
        self.child_start.clear();
        self.child_start.push(0);
        self.child_index.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.leaves.clear();
        self.leaf_bounds.clear();
        self.leaf_bounds.push(0);
    }

    /// Appends `tree` as the next net and returns its net index.
    ///
    /// Node `id` of the arena lands at global index
    /// `net_range(net).start + id.index()`; within the net, flat order is
    /// arena order (so per-net results compare index-for-index).
    pub fn push_tree(&mut self, tree: &RlcTree) -> usize {
        let base = self.parent.len() as u32;
        self.parent.reserve(tree.len());
        for id in tree.node_ids() {
            let parent = match tree.parent(id) {
                Some(p) => {
                    debug_assert!(p < id, "arena order must be topological");
                    base + p.0
                }
                None => NO_PARENT,
            };
            let section = tree.section(id);
            self.parent.push(parent);
            self.res.push(section.resistance());
            self.ind.push(section.inductance());
            self.cap.push(section.capacitance());
            for &child in tree.children(id) {
                self.child_index.push(base + child.0);
            }
            self.child_start.push(self.child_index.len() as u32);
            if tree.is_leaf(id) {
                self.leaves.push(base + id.0);
            }
        }
        self.bounds.push(self.parent.len() as u32);
        self.leaf_bounds.push(self.leaves.len() as u32);
        self.bounds.len() - 2
    }

    /// Total node count across all nets.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of nets pushed since the last [`clear`](Self::clear).
    pub fn net_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Global index range owned by net `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net >= net_count()`.
    pub fn net_range(&self, net: usize) -> core::ops::Range<usize> {
        self.bounds[net] as usize..self.bounds[net + 1] as usize
    }

    /// Global leaf indices of net `net`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `net >= net_count()`.
    pub fn net_leaves(&self, net: usize) -> &[u32] {
        &self.leaves[self.leaf_bounds[net] as usize..self.leaf_bounds[net + 1] as usize]
    }

    /// Global parent index per node ([`NO_PARENT`] for net roots).
    #[inline]
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Per-section resistances, indexed like [`parents`](Self::parents).
    #[inline]
    pub fn resistances(&self) -> &[Resistance] {
        &self.res
    }

    /// Per-section inductances, indexed like [`parents`](Self::parents).
    #[inline]
    pub fn inductances(&self) -> &[Inductance] {
        &self.ind
    }

    /// Per-section capacitances, indexed like [`parents`](Self::parents).
    #[inline]
    pub fn capacitances(&self) -> &[Capacitance] {
        &self.cap
    }

    /// CSR offsets: node `i`'s children are
    /// `child_index()[child_start()[i] as usize..child_start()[i + 1] as usize]`.
    #[inline]
    pub fn child_start(&self) -> &[u32] {
        &self.child_start
    }

    /// Concatenated CSR child groups (global indices, ascending per group).
    #[inline]
    pub fn child_index(&self) -> &[u32] {
        &self.child_index
    }

    /// Children of global node `i`, in ascending index order.
    #[inline]
    pub fn children_of(&self, i: usize) -> &[u32] {
        &self.child_index[self.child_start[i] as usize..self.child_start[i + 1] as usize]
    }

    /// All global leaf indices, ascending.
    #[inline]
    pub fn leaves(&self) -> &[u32] {
        &self.leaves
    }

    /// Replaces the section values at global index `i`.
    ///
    /// Purely a value edit: topology (and leaf status) cannot change.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_section(&mut self, i: usize, section: &RlcSection) {
        self.res[i] = section.resistance();
        self.ind[i] = section.inductance();
        self.cap[i] = section.capacitance();
    }

    /// Adds `delta` to the capacitance at global index `i` (Miller folding
    /// of a coupling capacitor onto its attach node).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bump_cap(&mut self, i: usize, delta: Capacitance) {
        self.cap[i] += delta;
    }
}

/// One RLC tree in flat structure-of-arrays form.
///
/// A thin wrapper over a single-net [`FlatForest`] whose flat indices
/// coincide with the source arena's [`NodeId::index`] values, so results
/// computed against a `FlatTree` can be addressed with the original ids
/// without any translation table.
///
/// # Examples
///
/// ```
/// use rlc_tree::flat::{FlatTree, NO_PARENT};
/// use rlc_tree::{topology, RlcSection};
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(10.0),
///     Inductance::from_nanohenries(1.0),
///     Capacitance::from_picofarads(0.1),
/// );
/// let tree = topology::balanced_tree(3, 2, s);
/// let flat = FlatTree::from_tree(&tree);
/// assert_eq!(flat.len(), tree.len());
/// assert_eq!(flat.parents()[0], NO_PARENT);
/// // Leaf enumeration matches the arena's (ascending) order.
/// assert!(flat.leaf_ids().eq(tree.leaves()));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatTree {
    forest: FlatForest,
}

impl FlatTree {
    /// Creates an empty flat tree (rebuild it before use).
    pub fn new() -> Self {
        Self {
            forest: FlatForest::new(),
        }
    }

    /// Snapshots `tree` into a fresh flat layout.
    pub fn from_tree(tree: &RlcTree) -> Self {
        let mut flat = Self::new();
        flat.rebuild_from(tree);
        flat
    }

    /// Re-snapshots `tree`, reusing every internal buffer.
    pub fn rebuild_from(&mut self, tree: &RlcTree) {
        self.forest.clear();
        self.forest.push_tree(tree);
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// Parent index per node ([`NO_PARENT`] for roots); `parent[i] < i`.
    #[inline]
    pub fn parents(&self) -> &[u32] {
        self.forest.parents()
    }

    /// Per-section resistances, indexed by [`NodeId::index`].
    #[inline]
    pub fn resistances(&self) -> &[Resistance] {
        self.forest.resistances()
    }

    /// Per-section inductances, indexed by [`NodeId::index`].
    #[inline]
    pub fn inductances(&self) -> &[Inductance] {
        self.forest.inductances()
    }

    /// Per-section capacitances, indexed by [`NodeId::index`].
    #[inline]
    pub fn capacitances(&self) -> &[Capacitance] {
        self.forest.capacitances()
    }

    /// CSR offsets (see [`FlatForest::child_start`]).
    #[inline]
    pub fn child_start(&self) -> &[u32] {
        self.forest.child_start()
    }

    /// Concatenated CSR child groups, ascending per group.
    #[inline]
    pub fn child_index(&self) -> &[u32] {
        self.forest.child_index()
    }

    /// Children of node `i`, in ascending index order.
    #[inline]
    pub fn children_of(&self, i: usize) -> &[u32] {
        self.forest.children_of(i)
    }

    /// Leaf indices, ascending (the arena's sink-enumeration order).
    #[inline]
    pub fn leaves(&self) -> &[u32] {
        self.forest.leaves()
    }

    /// Leaves as [`NodeId`]s, ascending — interchangeable with
    /// [`RlcTree::leaves`] on the source tree.
    pub fn leaf_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.forest.leaves().iter().map(|&i| NodeId(i))
    }

    /// Mirrors a value edit at `node` (see [`FlatForest::set_section`]).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_section(&mut self, node: usize, section: &RlcSection) {
        self.forest.set_section(node, section);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rlc_units::{Capacitance, Inductance, Resistance};

    fn s(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_nanohenries(l),
            Capacitance::from_picofarads(c),
        )
    }

    #[test]
    fn flat_tree_mirrors_arena_exactly() {
        let (tree, _) = topology::fig5(s(25.0, 5.0, 0.5));
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.len(), tree.len());
        for id in tree.node_ids() {
            let i = id.index();
            match tree.parent(id) {
                Some(p) => assert_eq!(flat.parents()[i], p.0),
                None => assert_eq!(flat.parents()[i], NO_PARENT),
            }
            assert_eq!(flat.resistances()[i], tree.section(id).resistance());
            assert_eq!(flat.inductances()[i], tree.section(id).inductance());
            assert_eq!(flat.capacitances()[i], tree.section(id).capacitance());
            let kids: Vec<u32> = tree.children(id).iter().map(|c| c.0).collect();
            assert_eq!(flat.children_of(i), kids.as_slice());
        }
        let leaves: Vec<NodeId> = tree.leaves().collect();
        assert!(flat.leaf_ids().eq(leaves));
    }

    #[test]
    fn topological_and_sorted_invariants_hold() {
        let tree = topology::balanced_tree(4, 3, s(10.0, 1.0, 0.2));
        let flat = FlatTree::from_tree(&tree);
        for (i, &p) in flat.parents().iter().enumerate() {
            assert!(p == NO_PARENT || (p as usize) < i, "parent[{i}] = {p}");
        }
        for i in 0..flat.len() {
            assert!(flat.children_of(i).windows(2).all(|w| w[0] < w[1]));
        }
        assert!(flat.leaves().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rebuild_reuses_buffers_and_matches_fresh_build() {
        let (small, _) = topology::single_line(3, s(5.0, 0.5, 0.1));
        let big = topology::balanced_tree(5, 2, s(10.0, 1.0, 0.2));
        let mut flat = FlatTree::from_tree(&big);
        flat.rebuild_from(&small);
        assert_eq!(flat, FlatTree::from_tree(&small));
        flat.rebuild_from(&big);
        assert_eq!(flat, FlatTree::from_tree(&big));
    }

    #[test]
    fn forest_packs_nets_contiguously() {
        let (line, _) = topology::single_line(3, s(5.0, 0.5, 0.1));
        let tree = topology::balanced_tree(2, 2, s(10.0, 1.0, 0.2));
        let mut forest = FlatForest::new();
        let a = forest.push_tree(&line);
        let b = forest.push_tree(&tree);
        assert_eq!((a, b), (0, 1));
        assert_eq!(forest.net_count(), 2);
        assert_eq!(forest.len(), line.len() + tree.len());
        assert_eq!(forest.net_range(0), 0..line.len());
        assert_eq!(forest.net_range(1), line.len()..line.len() + tree.len());
        // Net 1's nodes are net 0's arena values rebased by line.len().
        let base = line.len();
        for id in tree.node_ids() {
            let g = base + id.index();
            match tree.parent(id) {
                Some(p) => assert_eq!(forest.parents()[g] as usize, base + p.index()),
                None => assert_eq!(forest.parents()[g], NO_PARENT),
            }
            let kids: Vec<u32> = tree
                .children(id)
                .iter()
                .map(|c| (base + c.index()) as u32)
                .collect();
            assert_eq!(forest.children_of(g), kids.as_slice());
        }
        // Per-net leaf slices partition the global ascending list.
        assert_eq!(forest.net_leaves(0), &[2]);
        let tree_leaves: Vec<u32> = tree.leaves().map(|l| (base + l.index()) as u32).collect();
        assert_eq!(forest.net_leaves(1), tree_leaves.as_slice());
        // Global invariant: parent[i] < i across net boundaries too.
        for (i, &p) in forest.parents().iter().enumerate() {
            assert!(p == NO_PARENT || (p as usize) < i);
        }
    }

    #[test]
    fn value_edits_mirror_without_rebuild() {
        let (tree, _) = topology::single_line(4, s(5.0, 0.5, 0.1));
        let mut flat = FlatTree::from_tree(&tree);
        let edit = s(7.0, 0.25, 0.3);
        flat.set_section(2, &edit);
        assert_eq!(flat.resistances()[2], edit.resistance());
        assert_eq!(flat.inductances()[2], edit.inductance());
        assert_eq!(flat.capacitances()[2], edit.capacitance());

        let mut forest = FlatForest::new();
        forest.push_tree(&tree);
        let before = forest.capacitances()[1];
        forest.bump_cap(1, Capacitance::from_picofarads(0.05));
        assert_eq!(
            forest.capacitances()[1],
            before + Capacitance::from_picofarads(0.05)
        );
    }

    #[test]
    fn empty_layouts_are_well_formed() {
        let flat = FlatTree::new();
        assert!(flat.is_empty());
        assert_eq!(flat.child_start(), &[0]);
        assert_eq!(flat.leaf_ids().len(), 0);
        let mut forest = FlatForest::new();
        assert!(forest.is_empty());
        assert_eq!(forest.net_count(), 0);
        forest.clear();
        assert_eq!(forest.net_count(), 0);
    }
}
