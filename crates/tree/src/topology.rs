//! Canonical tree topologies, including the paper's example circuits.
//!
//! Everything the evaluation section of the paper exercises is generated
//! here: single lines (Section V-D "for a single line, the depth represents
//! the number of sections"), balanced trees of arbitrary branching factor
//! (Sections V-B/V-C), the asymmetric family parameterized by `asym`
//! (Section V-B, Fig. 12), the Fig. 5 seven-section example, a Fig. 8-style
//! example tree, and deterministic pseudo-random trees for property tests
//! and benches.

use rlc_units::{Capacitance, Inductance, Resistance};

use crate::{NodeId, RlcSection, RlcTree};

/// Builds a uniform single line of `sections` identical RLC sections.
///
/// Returns the tree and the id of the far-end (sink) node.
///
/// # Panics
///
/// Panics if `sections == 0`.
///
/// # Examples
///
/// ```
/// use rlc_tree::{RlcSection, topology};
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(10.0),
///     Inductance::from_nanohenries(1.0),
///     Capacitance::from_picofarads(0.1),
/// );
/// let (line, sink) = topology::single_line(8, s);
/// assert_eq!(line.len(), 8);
/// assert_eq!(line.depth(sink), 8);
/// ```
pub fn single_line(sections: usize, section: RlcSection) -> (RlcTree, NodeId) {
    assert!(sections > 0, "a line must have at least one section");
    let mut tree = RlcTree::with_capacity(sections);
    let mut node = tree.add_root_section(section);
    for _ in 1..sections {
        node = tree.add_section(node, section);
    }
    (tree, node)
}

/// Builds a balanced tree with `levels` levels and branching factor
/// `branching`, with every section identical.
///
/// Level 1 is the single trunk section; level `k` has `branching^(k−1)`
/// sections. A balanced binary tree with `levels = n` therefore has
/// `2^n − 1` sections and `2^(n−1)` sinks (paper Section V-C).
///
/// # Panics
///
/// Panics if `levels == 0` or `branching == 0`.
pub fn balanced_tree(levels: usize, branching: usize, section: RlcSection) -> RlcTree {
    balanced_tree_with(levels, branching, |_| section)
}

/// Builds a balanced tree whose section values may vary *by level*.
///
/// `section_for_level` receives the 1-based level index; using the same
/// value for every call reproduces [`balanced_tree`]. Per-level variation
/// keeps the tree balanced in the paper's sense (Section V-B: "the
/// impedances of the sections that constitute each level are equal").
///
/// # Panics
///
/// Panics if `levels == 0` or `branching == 0`.
pub fn balanced_tree_with<F>(levels: usize, branching: usize, mut section_for_level: F) -> RlcTree
where
    F: FnMut(usize) -> RlcSection,
{
    assert!(levels > 0, "tree must have at least one level");
    assert!(branching > 0, "branching factor must be positive");
    let mut tree = RlcTree::new();
    let mut frontier = vec![tree.add_root_section(section_for_level(1))];
    for level in 2..=levels {
        let section = section_for_level(level);
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                next.push(tree.add_section(parent, section));
            }
        }
        frontier = next;
    }
    tree
}

/// Builds the asymmetric binary family of Fig. 12.
///
/// Starting from a balanced binary tree of `levels` levels built from
/// `base`, the *left* branch at every bifurcation has its characteristic
/// impedance scaled by `asym` (R and L multiplied, C divided — see
/// [`RlcSection::impedance_scaled`]), following the paper's description:
/// "the impedance of the left branch is always twice the impedance of the
/// right branch" for `asym = 2`. `asym = 1` gives back the balanced tree.
///
/// # Panics
///
/// Panics if `levels == 0` or `asym` is not finite and positive.
pub fn asymmetric_tree(levels: usize, asym: f64, base: RlcSection) -> RlcTree {
    assert!(levels > 0, "tree must have at least one level");
    assert!(
        asym.is_finite() && asym > 0.0,
        "asym factor must be finite and positive, got {asym}"
    );
    let mut tree = RlcTree::new();
    let root = tree.add_root_section(base);
    let mut frontier = vec![root];
    for _ in 2..=levels {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &parent in &frontier {
            next.push(tree.add_section(parent, base.impedance_scaled(asym))); // left
            next.push(tree.add_section(parent, base)); // right
        }
        frontier = next;
    }
    tree
}

/// Node ids of the paper's Fig. 5 tree, named as in the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5Nodes {
    /// Node 1: downstream of the trunk section.
    pub n1: NodeId,
    /// Node 2: left second-level node.
    pub n2: NodeId,
    /// Node 3: right second-level node.
    pub n3: NodeId,
    /// Node 4: sink under node 2.
    pub n4: NodeId,
    /// Node 5: sink under node 2.
    pub n5: NodeId,
    /// Node 6: sink under node 3.
    pub n6: NodeId,
    /// Node 7: sink under node 3 — the output observed throughout Section V.
    pub n7: NodeId,
}

/// Builds the paper's Fig. 5 general RLC tree: a three-level binary tree of
/// seven sections, balanced (all sections equal to `section`).
///
/// Node 7 is the output at which Figs. 11–12 evaluate the model.
///
/// # Examples
///
/// ```
/// use rlc_tree::{RlcSection, topology};
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(25.0),
///     Inductance::from_nanohenries(5.0),
///     Capacitance::from_picofarads(0.5),
/// );
/// let (tree, nodes) = topology::fig5(s);
/// assert_eq!(tree.len(), 7);
/// assert!(tree.is_leaf(nodes.n7));
/// assert!(tree.is_balanced());
/// ```
pub fn fig5(section: RlcSection) -> (RlcTree, Fig5Nodes) {
    fig5_with(|_| section)
}

/// Builds the Fig. 5 topology with per-section values.
///
/// `section_for` receives the paper's 1-based section number (1–7).
pub fn fig5_with<F>(mut section_for: F) -> (RlcTree, Fig5Nodes)
where
    F: FnMut(usize) -> RlcSection,
{
    let mut tree = RlcTree::with_capacity(7);
    let n1 = tree.add_root_section(section_for(1));
    let n2 = tree.add_section(n1, section_for(2));
    let n3 = tree.add_section(n1, section_for(3));
    let n4 = tree.add_section(n2, section_for(4));
    let n5 = tree.add_section(n2, section_for(5));
    let n6 = tree.add_section(n3, section_for(6));
    let n7 = tree.add_section(n3, section_for(7));
    (
        tree,
        Fig5Nodes {
            n1,
            n2,
            n3,
            n4,
            n5,
            n6,
            n7,
        },
    )
}

/// Builds the Fig. 5 topology with the left/right `asym` impedance ratio of
/// Fig. 12 applied at both bifurcations.
pub fn fig5_asymmetric(asym: f64, base: RlcSection) -> (RlcTree, Fig5Nodes) {
    assert!(
        asym.is_finite() && asym > 0.0,
        "asym factor must be finite and positive, got {asym}"
    );
    fig5_with(|k| match k {
        // Left branches (sections 2, 4, 6) carry the scaled impedance.
        2 | 4 | 6 => base.impedance_scaled(asym),
        _ => base,
    })
}

/// An example tree in the spirit of the paper's Fig. 8 (the exact element
/// values were not reproduced in the available text; these representative
/// deep-submicrometer values are documented in `DESIGN.md`).
///
/// The tree has a 4-section trunk that then splits into a short branch to
/// output `O1` and a longer three-section branch to output `O2` — the
/// observed output of Fig. 9. Returns `(tree, o1, o2)`.
pub fn fig8() -> (RlcTree, NodeId, NodeId) {
    let trunk = RlcSection::new(
        Resistance::from_ohms(15.0),
        Inductance::from_nanohenries(2.5),
        Capacitance::from_picofarads(0.3),
    );
    let short = RlcSection::new(
        Resistance::from_ohms(30.0),
        Inductance::from_nanohenries(1.5),
        Capacitance::from_picofarads(0.25),
    );
    let long = RlcSection::new(
        Resistance::from_ohms(20.0),
        Inductance::from_nanohenries(2.0),
        Capacitance::from_picofarads(0.2),
    );
    let sink_load = Capacitance::from_picofarads(0.15);

    let mut tree = RlcTree::new();
    let mut node = tree.add_root_section(trunk);
    for _ in 1..4 {
        node = tree.add_section(node, trunk);
    }
    // Short branch to O1.
    let o1 = tree.add_section(node, short.with_added_capacitance(sink_load));
    // Long branch to O2.
    let mut n = tree.add_section(node, long);
    n = tree.add_section(n, long);
    let o2 = tree.add_section(n, long.with_added_capacitance(sink_load));
    (tree, o1, o2)
}

/// Builds the ladder circuit equivalent to a *balanced* tree (paper
/// Fig. 10 and Section V-B).
///
/// In a balanced tree, symmetry lets all nodes of a level be shunted
/// without changing any response, so the `b^(k−1)` parallel sections of
/// level `k` collapse into one section with `R/b^(k−1)`, `L/b^(k−1)` and
/// `C·b^(k−1)`. The resulting ladder has one section per level and *no
/// finite zeros* — the pole-zero cancellation that makes the second-order
/// approximation so accurate for balanced trees.
///
/// Returns `None` if the tree is not balanced (or is empty).
///
/// # Examples
///
/// ```
/// use rlc_tree::{RlcSection, topology};
/// use rlc_units::{Resistance, Inductance, Capacitance};
///
/// let s = RlcSection::new(
///     Resistance::from_ohms(20.0),
///     Inductance::from_nanohenries(2.0),
///     Capacitance::from_picofarads(0.3),
/// );
/// let tree = topology::balanced_tree(3, 2, s);
/// let ladder = topology::equivalent_ladder(&tree).expect("balanced");
/// assert_eq!(ladder.len(), 3); // one section per level
/// // Totals are preserved.
/// assert!((ladder.total_capacitance().as_farads()
///     - tree.total_capacitance().as_farads()).abs() < 1e-24);
/// ```
pub fn equivalent_ladder(tree: &RlcTree) -> Option<RlcTree> {
    if tree.is_empty() || !tree.is_balanced() {
        return None;
    }
    // Per-level section value and multiplicity.
    let mut per_level: Vec<(RlcSection, usize)> = Vec::new();
    for id in tree.node_ids() {
        let depth = tree.depth(id);
        if per_level.len() < depth {
            per_level.resize(depth, (RlcSection::zero(), 0));
        }
        per_level[depth - 1].0 = *tree.section(id);
        per_level[depth - 1].1 += 1;
    }
    let mut ladder = RlcTree::with_capacity(per_level.len());
    let mut parent: Option<NodeId> = None;
    for (section, count) in per_level {
        let k = count as f64;
        let merged = RlcSection::new(
            section.resistance() / k,
            section.inductance() / k,
            section.capacitance() * k,
        );
        parent = Some(match parent {
            Some(p) => ladder.add_section(p, merged),
            None => ladder.add_root_section(merged),
        });
    }
    Some(ladder)
}

/// Deterministic pseudo-random tree generator for property tests and
/// benches.
///
/// Generates `sections` sections with element values drawn uniformly from
/// the given inclusive ranges; each new section attaches to a uniformly
/// random existing node (or the source for the first). The generator is a
/// self-contained SplitMix64, so results are reproducible from `seed` with
/// no external dependencies.
///
/// # Panics
///
/// Panics if `sections == 0` or any range is inverted or negative.
pub fn random_tree(
    seed: u64,
    sections: usize,
    r_range: (Resistance, Resistance),
    l_range: (Inductance, Inductance),
    c_range: (Capacitance, Capacitance),
) -> RlcTree {
    assert!(sections > 0, "tree must have at least one section");
    let mut rng = SplitMix64::new(seed);
    fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
        assert!(
            lo >= 0.0 && hi >= lo,
            "range must be non-negative and ordered, got [{lo}, {hi}]"
        );
        lo + (hi - lo) * rng.next_f64()
    }
    let mut tree = RlcTree::with_capacity(sections);
    for k in 0..sections {
        let section = RlcSection::new(
            Resistance::from_ohms(uniform(&mut rng, r_range.0.as_ohms(), r_range.1.as_ohms())),
            Inductance::from_henries(uniform(
                &mut rng,
                l_range.0.as_henries(),
                l_range.1.as_henries(),
            )),
            Capacitance::from_farads(uniform(
                &mut rng,
                c_range.0.as_farads(),
                c_range.1.as_farads(),
            )),
        );
        if k == 0 {
            tree.add_root_section(section);
        } else {
            let parent = NodeId((rng.next_u64() % k as u64) as u32);
            tree.add_section(parent, section);
        }
    }
    tree
}

/// Minimal SplitMix64 PRNG (Steele, Lea & Flood 2014).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_henries(l),
            Capacitance::from_farads(c),
        )
    }

    #[test]
    fn single_line_shape() {
        let (line, sink) = single_line(5, s(1.0, 1.0, 1.0));
        assert_eq!(line.len(), 5);
        assert_eq!(line.max_depth(), 5);
        assert_eq!(line.leaves().collect::<Vec<_>>(), vec![sink]);
        assert!(line.is_balanced());
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn single_line_rejects_zero() {
        let _ = single_line(0, RlcSection::zero());
    }

    #[test]
    fn balanced_binary_counts() {
        // n levels, branching 2 → 2^n − 1 sections, 2^(n−1) sinks.
        for levels in 1..=5 {
            let t = balanced_tree(levels, 2, s(1.0, 1.0, 1.0));
            assert_eq!(t.len(), (1 << levels) - 1);
            assert_eq!(t.leaves().count(), 1 << (levels - 1));
            assert_eq!(t.max_depth(), levels);
            assert!(t.is_balanced());
        }
    }

    #[test]
    fn balanced_sixteen_sink_variants_match_paper() {
        // Paper Section V-C: 16 sinks via binary/5 levels or flat/2 levels.
        let binary = balanced_tree(5, 2, s(1.0, 1.0, 1.0));
        assert_eq!(binary.leaves().count(), 16);
        assert_eq!(binary.len(), 31);
        let flat = balanced_tree(2, 16, s(1.0, 1.0, 1.0));
        assert_eq!(flat.leaves().count(), 16);
        assert_eq!(flat.len(), 17);
    }

    #[test]
    fn balanced_with_per_level_sections() {
        let t = balanced_tree_with(3, 2, |level| s(level as f64, 0.0, 1.0));
        assert!(t.is_balanced());
        let root = t.roots()[0];
        assert_eq!(t.section(root).resistance().as_ohms(), 1.0);
        let leaf = t.leaves().next().unwrap();
        assert_eq!(t.section(leaf).resistance().as_ohms(), 3.0);
    }

    #[test]
    fn asymmetric_tree_scales_left() {
        let t = asymmetric_tree(3, 2.0, s(1.0, 1.0, 1.0));
        assert_eq!(t.len(), 7);
        assert!(!t.is_balanced());
        let root = t.roots()[0];
        let kids = t.children(root);
        assert_eq!(t.section(kids[0]).resistance().as_ohms(), 2.0); // left
        assert_eq!(t.section(kids[1]).resistance().as_ohms(), 1.0); // right
    }

    #[test]
    fn asymmetric_with_unit_ratio_is_balanced() {
        let t = asymmetric_tree(4, 1.0, s(1.0, 1.0, 1.0));
        assert!(t.is_balanced());
    }

    #[test]
    #[should_panic(expected = "asym factor")]
    fn asymmetric_rejects_bad_ratio() {
        let _ = asymmetric_tree(3, 0.0, RlcSection::zero());
    }

    #[test]
    fn fig5_structure_matches_paper() {
        let (t, n) = fig5(s(1.0, 1.0, 1.0));
        assert_eq!(t.len(), 7);
        assert_eq!(t.roots(), &[n.n1]);
        assert_eq!(t.children(n.n1), &[n.n2, n.n3]);
        assert_eq!(t.children(n.n2), &[n.n4, n.n5]);
        assert_eq!(t.children(n.n3), &[n.n6, n.n7]);
        for sink in [n.n4, n.n5, n.n6, n.n7] {
            assert!(t.is_leaf(sink));
        }
        assert!(t.is_balanced());
    }

    #[test]
    fn fig5_asymmetric_left_heavier() {
        let (t, n) = fig5_asymmetric(3.0, s(1.0, 1.0, 1.0));
        assert_eq!(t.section(n.n2).resistance().as_ohms(), 3.0);
        assert_eq!(t.section(n.n3).resistance().as_ohms(), 1.0);
        assert_eq!(t.section(n.n6).resistance().as_ohms(), 3.0);
        assert_eq!(t.section(n.n7).resistance().as_ohms(), 1.0);
    }

    #[test]
    fn fig8_has_two_outputs() {
        let (t, o1, o2) = fig8();
        assert!(t.is_leaf(o1));
        assert!(t.is_leaf(o2));
        assert_eq!(t.leaves().count(), 2);
        // O2 is the deeper output.
        assert!(t.depth(o2) > t.depth(o1));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn equivalent_ladder_matches_paper_fig10() {
        // 3-level binary tree: levels collapse to R, R/2, R/4 etc.
        let tree = balanced_tree(3, 2, s(8.0, 4.0, 2.0));
        let ladder = equivalent_ladder(&tree).expect("balanced");
        assert_eq!(ladder.len(), 3);
        let ids: Vec<NodeId> = ladder.node_ids().collect();
        assert_eq!(ladder.section(ids[0]).resistance().as_ohms(), 8.0);
        assert_eq!(ladder.section(ids[1]).resistance().as_ohms(), 4.0);
        assert_eq!(ladder.section(ids[2]).resistance().as_ohms(), 2.0);
        assert_eq!(ladder.section(ids[2]).capacitance().as_farads(), 8.0);
        assert_eq!(ladder.max_depth(), 3);
    }

    #[test]
    fn equivalent_ladder_handles_any_branching_factor() {
        let tree = balanced_tree(2, 16, s(16.0, 16.0, 1.0));
        let ladder = equivalent_ladder(&tree).expect("balanced");
        assert_eq!(ladder.len(), 2);
        let leaf = ladder.leaves().next().unwrap();
        assert_eq!(ladder.section(leaf).resistance().as_ohms(), 1.0);
        assert_eq!(ladder.section(leaf).capacitance().as_farads(), 16.0);
    }

    #[test]
    fn equivalent_ladder_rejects_unbalanced_and_empty() {
        let unbalanced = asymmetric_tree(3, 2.0, s(1.0, 1.0, 1.0));
        assert!(equivalent_ladder(&unbalanced).is_none());
        assert!(equivalent_ladder(&RlcTree::new()).is_none());
    }

    #[test]
    fn random_tree_is_reproducible() {
        let mk = || {
            random_tree(
                42,
                50,
                (Resistance::from_ohms(1.0), Resistance::from_ohms(100.0)),
                (Inductance::ZERO, Inductance::from_nanohenries(10.0)),
                (
                    Capacitance::from_femtofarads(10.0),
                    Capacitance::from_picofarads(1.0),
                ),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        // Different seed → different tree.
        let c = random_tree(
            43,
            50,
            (Resistance::from_ohms(1.0), Resistance::from_ohms(100.0)),
            (Inductance::ZERO, Inductance::from_nanohenries(10.0)),
            (
                Capacitance::from_femtofarads(10.0),
                Capacitance::from_picofarads(1.0),
            ),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn random_tree_values_within_ranges() {
        let t = random_tree(
            7,
            200,
            (Resistance::from_ohms(5.0), Resistance::from_ohms(6.0)),
            (
                Inductance::from_nanohenries(1.0),
                Inductance::from_nanohenries(2.0),
            ),
            (
                Capacitance::from_picofarads(0.1),
                Capacitance::from_picofarads(0.2),
            ),
        );
        for id in t.node_ids() {
            let sec = t.section(id);
            assert!((5.0..=6.0).contains(&sec.resistance().as_ohms()));
            assert!((1.0e-9..=2.0e-9).contains(&sec.inductance().as_henries()));
            assert!((0.1e-12..=0.2e-12).contains(&sec.capacitance().as_farads()));
        }
    }

    #[test]
    #[should_panic(expected = "range must be non-negative and ordered")]
    fn random_tree_rejects_inverted_range() {
        let _ = random_tree(
            1,
            2,
            (Resistance::from_ohms(10.0), Resistance::from_ohms(1.0)),
            (Inductance::ZERO, Inductance::ZERO),
            (Capacitance::ZERO, Capacitance::ZERO),
        );
    }
}
