//! Synthesis decks: a netlist plus buffer-library and constraint cards.
//!
//! A *synthesis deck* is an ordinary netlist (see [`crate::netlist`])
//! extended with deck-level cards describing what the synthesizer may do
//! to the net and what it must achieve:
//!
//! ```text
//! * clock net, M6
//! .input in
//! R1 in n1 120
//! C1 n1 0 0.4p
//! .lib bufx r=1.2k cin=4f tin=18p
//! .use bufx
//! .driver 150
//! .require n1 900p
//! .end
//! ```
//!
//! * `.lib <name> r=<R> cin=<C> tin=<T>` defines a buffer: driver
//!   (output) resistance, input capacitance, and intrinsic delay. A deck
//!   may carry several `.lib` cards; key/value fields accept any order.
//! * `.use <name>` selects which buffer the synthesizer inserts. Without
//!   it, the first `.lib` card is selected.
//! * `.driver <R>` is the source driver's output resistance. Without it,
//!   the net is assumed driven by the selected buffer's resistance.
//! * `.require <node> <T>` is an optional required 50% arrival time at a
//!   named tree node, reported as slack by the synthesizer.
//!
//! Values use the same engineering-suffix grammar as element cards
//! (`1.2k`, `4f`, `18p`). The plain [`Netlist`] parser ignores every
//! synthesis card (they are unknown directives to it), so a synthesis
//! deck is always also a valid analysis deck for the same tree.
//!
//! Malformed cards are **typed errors**, never panics: card-level
//! problems surface as [`TreeError::ParseNetlist`] with the 1-based line
//! number, deck-level problems (no `.lib` card at all) as
//! [`TreeError::SynthDeck`]. The `rlc-lint` crate mirrors this grammar
//! in its L5xx synthesis tier with the same accept/reject boundary.

use std::collections::BTreeMap;

use rlc_units::{Capacitance, Resistance, Time};

use crate::netlist::{parse_value, Netlist};
use crate::{NodeId, RlcTree, TreeError};

/// One `.lib` card: a buffer characterized for synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferCard {
    /// The library name of the buffer (the `.lib` card's first field).
    pub name: String,
    /// Driver (output) resistance; must be positive and finite.
    pub resistance: Resistance,
    /// Input capacitance presented to the upstream stage.
    pub input_capacitance: Capacitance,
    /// Intrinsic (input-to-output) delay added per inserted buffer.
    pub intrinsic_delay: Time,
}

/// A parsed synthesis deck: the netlist plus its buffer library and
/// constraints.
#[derive(Debug, Clone)]
pub struct SynthDeck {
    netlist: Netlist,
    buffers: Vec<BufferCard>,
    selected: usize,
    driver: Resistance,
    explicit_driver: bool,
    requires: Vec<(NodeId, Time)>,
    /// Original names of `.require` nodes, aligned with `requires`.
    require_names: Vec<String>,
}

/// The set of directives that make a deck a synthesis deck.
const SYNTH_DIRECTIVES: [&str; 4] = [".lib", ".use", ".driver", ".require"];

/// Whether `deck` contains any synthesis directive (`.lib`, `.use`,
/// `.driver`, `.require`). Used by `lint_path`-style routers to decide
/// which grammar a deck belongs to; a deck can be a synthesis deck and
/// still fail [`SynthDeck::parse`].
pub fn is_synth_deck(deck: &str) -> bool {
    deck.lines().any(|raw| {
        let line = raw.trim();
        SYNTH_DIRECTIVES.iter().any(|d| {
            let lower = line
                .split_whitespace()
                .next()
                .map(str::to_ascii_lowercase)
                .unwrap_or_default();
            lower == *d
        })
    })
}

impl SynthDeck {
    /// Parses a synthesis deck.
    ///
    /// # Errors
    ///
    /// * [`TreeError::ParseNetlist`] for malformed element or synthesis
    ///   cards (bad values, missing fields, duplicate definitions,
    ///   unknown buffer references, constraints on nonexistent nodes);
    /// * [`TreeError::SynthDeck`] when the deck has no `.lib` card;
    /// * any error of [`Netlist::parse`] for the element portion.
    pub fn parse(deck: &str) -> Result<Self, TreeError> {
        let mut buffers: Vec<BufferCard> = Vec::new();
        let mut use_card: Option<(usize, String)> = None;
        let mut driver: Option<Resistance> = None;
        let mut raw_requires: Vec<(usize, String, Time)> = Vec::new();

        for (lineno, raw) in deck.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let lower = fields[0].to_ascii_lowercase();
            if lower == ".end" {
                break;
            }
            match lower.as_str() {
                ".lib" => {
                    let card = parse_lib_card(&fields, lineno)?;
                    if buffers.iter().any(|b| b.name == card.name) {
                        return Err(TreeError::ParseNetlist {
                            line: lineno,
                            message: format!("duplicate .lib buffer {:?}", card.name),
                        });
                    }
                    buffers.push(card);
                }
                ".use" => {
                    let name = expect_one_field(&fields, ".use", "a buffer name", lineno)?;
                    if use_card.is_some() {
                        return Err(TreeError::ParseNetlist {
                            line: lineno,
                            message: "duplicate .use card".into(),
                        });
                    }
                    use_card = Some((lineno, name.to_owned()));
                }
                ".driver" => {
                    let value = expect_one_field(&fields, ".driver", "a resistance", lineno)?;
                    if driver.is_some() {
                        return Err(TreeError::ParseNetlist {
                            line: lineno,
                            message: "duplicate .driver card".into(),
                        });
                    }
                    let r: Resistance = parse_value(value, lineno)?;
                    check_positive(".driver resistance", r.as_ohms(), value, lineno)?;
                    driver = Some(r);
                }
                ".require" => {
                    if fields.len() != 3 {
                        return Err(TreeError::ParseNetlist {
                            line: lineno,
                            message: format!(
                                ".require expects `<node> <time>`, got {} fields",
                                fields.len() - 1
                            ),
                        });
                    }
                    let node = fields[1];
                    let t: Time = parse_value(fields[2], lineno)?;
                    check_non_negative(".require time", t.as_seconds(), fields[2], lineno)?;
                    if raw_requires.iter().any(|(_, n, _)| n == node) {
                        return Err(TreeError::ParseNetlist {
                            line: lineno,
                            message: format!("duplicate .require constraint on node {node:?}"),
                        });
                    }
                    raw_requires.push((lineno, node.to_owned(), t));
                }
                _ => {}
            }
        }

        if buffers.is_empty() {
            return Err(TreeError::SynthDeck {
                message: "synthesis deck has no .lib buffer card".into(),
            });
        }
        let selected = match &use_card {
            Some((lineno, name)) => {
                buffers
                    .iter()
                    .position(|b| &b.name == name)
                    .ok_or_else(|| TreeError::ParseNetlist {
                        line: *lineno,
                        message: format!(".use references unknown buffer {name:?}"),
                    })?
            }
            None => 0,
        };

        let netlist = Netlist::parse(deck)?;
        let mut requires: Vec<(NodeId, Time, String)> = Vec::with_capacity(raw_requires.len());
        for (lineno, name, t) in raw_requires {
            let node = netlist.node(&name).ok_or_else(|| TreeError::ParseNetlist {
                line: lineno,
                message: format!(".require constraint on nonexistent node {name:?}"),
            })?;
            requires.push((node, t, name));
        }
        requires.sort_by_key(|(node, _, _)| node.index());
        let explicit_driver = driver.is_some();
        let driver = driver.unwrap_or(buffers[selected].resistance);
        let require_names = requires.iter().map(|(_, _, n)| n.clone()).collect();
        let requires = requires.into_iter().map(|(node, t, _)| (node, t)).collect();

        Ok(Self {
            netlist,
            buffers,
            selected,
            driver,
            explicit_driver,
            requires,
            require_names,
        })
    }

    /// The parsed element tree.
    pub fn tree(&self) -> &RlcTree {
        self.netlist.tree()
    }

    /// The underlying netlist (node names, header).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Every `.lib` card, in deck order.
    pub fn buffers(&self) -> &[BufferCard] {
        &self.buffers
    }

    /// The buffer the synthesizer will insert (the `.use` selection, or
    /// the first `.lib` card).
    pub fn buffer(&self) -> &BufferCard {
        &self.buffers[self.selected]
    }

    /// The source driver's output resistance (`.driver`, defaulting to the
    /// selected buffer's resistance).
    pub fn driver_resistance(&self) -> Resistance {
        self.driver
    }

    /// Required 50% arrival times from `.require` cards, sorted by node
    /// index.
    pub fn required_times(&self) -> &[(NodeId, Time)] {
        &self.requires
    }

    /// The canonical form of this synthesis deck: the netlist tree's
    /// canonical deck (comments dropped, nodes renamed `n{index}`, `{:e}`
    /// values) with the *resolved* synthesis cards spliced in before
    /// `.end` —
    /// only the selected buffer is emitted (unselected `.lib` cards
    /// cannot influence the synthesis result, so they must not influence
    /// the cache identity), `.use` and `.driver` are always explicit, and
    /// `.require` cards are sorted by canonical node index.
    ///
    /// Like the other canonical forms this is a fixpoint:
    /// `SynthDeck::parse(deck.canonical_deck())` reproduces the same
    /// canonical bytes, so it serves as the content address for the serve
    /// tier's `optimize` cache. Unlike [`Netlist::canonical_deck`] the
    /// deck header is *not* preserved: two synthesis decks differing only
    /// in prose must share one cache identity, matching the analyze and
    /// couple key derivations.
    pub fn canonical_deck(&self) -> String {
        use std::fmt::Write as _;

        let base = self.netlist.tree().canonical_deck();
        let body = base
            .strip_suffix(".end\n")
            .unwrap_or_else(|| unreachable!("canonical netlist decks always end with .end"));
        let mut out = body.to_owned();
        let buffer = self.buffer();
        let _ = writeln!(
            out,
            ".lib {} r={:e} cin={:e} tin={:e}",
            buffer.name,
            buffer.resistance.as_ohms(),
            buffer.input_capacitance.as_farads(),
            buffer.intrinsic_delay.as_seconds()
        );
        let _ = writeln!(out, ".use {}", buffer.name);
        let _ = writeln!(out, ".driver {:e}", self.driver.as_ohms());
        for (node, t) in &self.requires {
            let _ = writeln!(out, ".require n{} {:e}", node.index(), t.as_seconds());
        }
        out.push_str(".end\n");
        out
    }

    /// The original deck names of the `.require` nodes, aligned with
    /// [`required_times`](Self::required_times).
    pub fn require_names(&self) -> &[String] {
        &self.require_names
    }

    /// Whether the deck carried an explicit `.driver` card (as opposed to
    /// defaulting to the selected buffer's resistance).
    pub fn has_explicit_driver(&self) -> bool {
        self.explicit_driver
    }
}

fn parse_lib_card(fields: &[&str], line: usize) -> Result<BufferCard, TreeError> {
    if fields.len() != 5 {
        return Err(TreeError::ParseNetlist {
            line,
            message: format!(
                ".lib expects `<name> r=<res> cin=<cap> tin=<time>`, got {} fields",
                fields.len() - 1
            ),
        });
    }
    let name = fields[1];
    let mut kv: BTreeMap<&str, &str> = BTreeMap::new();
    for field in &fields[2..] {
        let Some((key, value)) = field.split_once('=') else {
            return Err(TreeError::ParseNetlist {
                line,
                message: format!(".lib field {field:?} is not `key=value`"),
            });
        };
        if kv.insert(key, value).is_some() {
            return Err(TreeError::ParseNetlist {
                line,
                message: format!(".lib repeats key {key:?}"),
            });
        }
    }
    let take = |key: &str| -> Result<&str, TreeError> {
        kv.get(key).copied().ok_or_else(|| TreeError::ParseNetlist {
            line,
            message: format!(".lib is missing key {key:?}"),
        })
    };
    for key in kv.keys() {
        if !matches!(*key, "r" | "cin" | "tin") {
            return Err(TreeError::ParseNetlist {
                line,
                message: format!(".lib has unknown key {key:?}"),
            });
        }
    }
    let r: Resistance = parse_value(take("r")?, line)?;
    check_positive(".lib resistance", r.as_ohms(), take("r")?, line)?;
    let cin: Capacitance = parse_value(take("cin")?, line)?;
    check_non_negative(
        ".lib input capacitance",
        cin.as_farads(),
        take("cin")?,
        line,
    )?;
    let tin: Time = parse_value(take("tin")?, line)?;
    check_non_negative(".lib intrinsic delay", tin.as_seconds(), take("tin")?, line)?;
    Ok(BufferCard {
        name: name.to_owned(),
        resistance: r,
        input_capacitance: cin,
        intrinsic_delay: tin,
    })
}

fn expect_one_field<'a>(
    fields: &[&'a str],
    card: &str,
    what: &str,
    line: usize,
) -> Result<&'a str, TreeError> {
    if fields.len() != 2 {
        return Err(TreeError::ParseNetlist {
            line,
            message: format!("{card} expects {what}, got {} fields", fields.len() - 1),
        });
    }
    Ok(fields[1])
}

fn check_positive(what: &str, base_value: f64, raw: &str, line: usize) -> Result<(), TreeError> {
    if !base_value.is_finite() || base_value <= 0.0 {
        return Err(TreeError::ParseNetlist {
            line,
            message: format!("{what} {raw:?} must be finite and positive"),
        });
    }
    Ok(())
}

fn check_non_negative(
    what: &str,
    base_value: f64,
    raw: &str,
    line: usize,
) -> Result<(), TreeError> {
    if !base_value.is_finite() || base_value < 0.0 {
        return Err(TreeError::ParseNetlist {
            line,
            message: format!("{what} {raw:?} must be finite and non-negative"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
* clock net
.input in
R1 in n1 120
C1 n1 0 0.4p
R2 n1 n2 120
C2 n2 0 0.4p
.lib bufx r=1.2k cin=4f tin=18p
.lib bufy r=600 cin=9f tin=25p
.use bufx
.driver 150
.require n2 900p
.end
";

    #[test]
    fn parses_a_full_synthesis_deck() {
        let deck = SynthDeck::parse(DECK).unwrap();
        assert_eq!(deck.tree().len(), 2);
        assert_eq!(deck.buffers().len(), 2);
        assert_eq!(deck.buffer().name, "bufx");
        assert_eq!(deck.buffer().resistance.as_ohms(), 1200.0);
        assert!((deck.buffer().input_capacitance.as_farads() - 4e-15).abs() < 1e-24);
        assert!((deck.buffer().intrinsic_delay.as_seconds() - 18e-12).abs() < 1e-21);
        assert_eq!(deck.driver_resistance().as_ohms(), 150.0);
        assert!(deck.has_explicit_driver());
        let requires = deck.required_times();
        assert_eq!(requires.len(), 1);
        assert_eq!(requires[0].0, deck.netlist().node("n2").unwrap());
        assert!((requires[0].1.as_seconds() - 900e-12).abs() < 1e-18);
        assert_eq!(deck.require_names(), ["n2"]);
    }

    #[test]
    fn lib_keys_accept_any_order_and_use_defaults_to_first() {
        let deck = "\
R1 in n1 25
C1 n1 0 0.5p
.lib a tin=10p cin=2f r=3k
";
        let parsed = SynthDeck::parse(deck).unwrap();
        assert_eq!(parsed.buffer().name, "a");
        // No .driver: the net is assumed driven by the selected buffer.
        assert_eq!(parsed.driver_resistance().as_ohms(), 3000.0);
        assert!(!parsed.has_explicit_driver());
    }

    #[test]
    fn detection_is_case_insensitive_and_token_exact() {
        assert!(is_synth_deck(".LIB b r=1 cin=1f tin=1p\n"));
        assert!(is_synth_deck("R1 in n1 25\n  .driver 100\n"));
        assert!(!is_synth_deck("R1 in n1 25\nC1 n1 0 1p\n"));
        // `.library` is a different (unknown) directive, not a synth card.
        assert!(!is_synth_deck(".library foo\n"));
        // Comments never count.
        assert!(!is_synth_deck("* .lib in prose\n"));
    }

    #[test]
    fn netlist_parser_ignores_synth_cards() {
        // The same deck is a valid plain analysis deck.
        let plain = Netlist::parse(DECK).unwrap();
        assert_eq!(plain.tree().len(), 2);
    }

    #[test]
    fn malformed_cards_are_typed_errors_with_lines() {
        let cases: &[(&str, &str)] = &[
            (".lib a r=1k cin=4f\nR1 in n1 25\nC1 n1 0 1p\n", "3 fields"),
            (
                ".lib a r=1k cin=4f cin=5f\nR1 in n1 25\nC1 n1 0 1p\n",
                "repeats key",
            ),
            (
                ".lib a r=1k cin=4f tin=1p extra=2\nR1 in n1 25\nC1 n1 0 1p\n",
                "5 fields",
            ),
            (
                ".lib a r=1k cin=4f zap=1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "unknown key",
            ),
            (
                ".lib a r=0 cin=4f tin=1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "positive",
            ),
            (
                ".lib a r=-3 cin=4f tin=1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "positive",
            ),
            (
                ".lib a r=1k cin=oops tin=1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "bad value",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.lib a r=2k cin=4f tin=1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "duplicate .lib",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.use b\nR1 in n1 25\nC1 n1 0 1p\n",
                "unknown buffer",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.use a\n.use a\nR1 in n1 25\nC1 n1 0 1p\n",
                "duplicate .use",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.driver 0\nR1 in n1 25\nC1 n1 0 1p\n",
                "positive",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.driver 10\n.driver 20\nR1 in n1 25\nC1 n1 0 1p\n",
                "duplicate .driver",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.require zz 1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "nonexistent node",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.require n1 -1p\nR1 in n1 25\nC1 n1 0 1p\n",
                "non-negative",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.require n1 1p\n.require n1 2p\nR1 in n1 25\nC1 n1 0 1p\n",
                "duplicate .require",
            ),
            (
                ".lib a r=1k cin=4f tin=1p\n.require n1\nR1 in n1 25\nC1 n1 0 1p\n",
                "1 fields",
            ),
        ];
        for (deck, needle) in cases {
            let err = SynthDeck::parse(deck).unwrap_err();
            assert!(
                matches!(err, TreeError::ParseNetlist { .. }),
                "deck {deck:?} gave {err:?}"
            );
            assert!(
                err.to_string().contains(needle),
                "deck {deck:?}: {err} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn deck_without_lib_card_is_a_deck_level_error() {
        let err = SynthDeck::parse(".driver 100\nR1 in n1 25\nC1 n1 0 1p\n").unwrap_err();
        assert!(matches!(err, TreeError::SynthDeck { .. }), "{err:?}");
        assert!(err.to_string().contains(".lib"));
    }

    #[test]
    fn netlist_errors_pass_through() {
        let err = SynthDeck::parse(".lib a r=1k cin=4f tin=1p\nR1 in n1 oops\n").unwrap_err();
        assert!(matches!(err, TreeError::ParseNetlist { .. }));
    }

    #[test]
    fn canonical_deck_is_a_fixpoint_and_drops_unselected_buffers() {
        let deck = SynthDeck::parse(DECK).unwrap();
        let canonical = deck.canonical_deck();
        // The header comment is dropped: canonical identity is prose-free.
        assert!(canonical.starts_with(".input in\n"), "{canonical}");
        assert!(canonical.contains(".lib bufx "), "{canonical}");
        assert!(!canonical.contains("bufy"), "{canonical}");
        assert!(canonical.contains(".use bufx\n"), "{canonical}");
        assert!(canonical.contains(".driver 1.5e2\n"), "{canonical}");
        assert!(canonical.ends_with(".end\n"), "{canonical}");

        let again = SynthDeck::parse(&canonical).unwrap();
        assert_eq!(
            again.canonical_deck(),
            canonical,
            "canonical form is a fixpoint"
        );
        assert_eq!(again.tree(), deck.tree());
        assert_eq!(again.buffer(), deck.buffer());
        assert_eq!(again.driver_resistance(), deck.driver_resistance());
        assert_eq!(again.required_times(), deck.required_times());
    }

    #[test]
    fn canonical_deck_shares_identity_across_spellings() {
        // Same circuit, same library physics: different node names, value
        // spellings, and an extra unselected buffer must not change the
        // canonical bytes.
        let a = SynthDeck::parse(
            "R1 in x 120\nC1 x 0 0.4p\n.lib b r=1.2k cin=4f tin=18p\n.driver 150\n",
        )
        .unwrap();
        let b = SynthDeck::parse(
            ".input in\nRw in y 1.2e2\nCw y 0 4e-13\n.lib b r=1200 cin=0.004p tin=0.018n\n.lib spare r=9k cin=1f tin=5p\n.use b\n.driver 1.5e2\n",
        )
        .unwrap();
        assert_eq!(a.canonical_deck(), b.canonical_deck());
    }

    #[test]
    fn requires_are_sorted_by_node_index() {
        let deck = "\
R1 in a 25
C1 a 0 1p
R2 a b 25
C2 b 0 1p
.lib buf r=1k cin=4f tin=10p
.require b 2n
.require a 1n
";
        let parsed = SynthDeck::parse(deck).unwrap();
        let nodes: Vec<u32> = parsed
            .required_times()
            .iter()
            .map(|(n, _)| n.index() as u32)
            .collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(nodes, sorted);
    }
}
