//! Property tests for Padé moment matching: models built from the moments
//! of known pole sets must recover those poles, and tree-derived models
//! must match the moments they were built from.

use proptest::prelude::*;
use rlc_awe::ReducedOrderModel;
use rlc_numeric::Complex64;
use rlc_tree::topology;
use rlc_units::{Capacitance, Inductance, Resistance, Time};

/// Moments of `H(s) = Σ r_k/(s−p_k)` with DC gain 1:
/// `m_j = Σ_k −r_k/p_k^{j+1}`.
fn moments_of(poles: &[f64], count: usize) -> Vec<f64> {
    // Zero-free all-pole model: residue_k = Π_j(−p_j) / Π_{j≠k}(p_k − p_j).
    let n = poles.len();
    let mut residues = vec![0.0f64; n];
    for k in 0..n {
        let mut num = 1.0;
        for &p in poles {
            num *= -p;
        }
        let mut den = 1.0;
        for (j, &p) in poles.iter().enumerate() {
            if j != k {
                den *= poles[k] - p;
            }
        }
        residues[k] = num / den;
    }
    (0..count)
        .map(|j| {
            poles
                .iter()
                .zip(&residues)
                .map(|(&p, &r)| -r / p.powi(j as i32 + 1))
                .sum()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// q=2 Padé from the moments of a 2-pole system recovers both poles.
    #[test]
    fn two_pole_recovery(
        p1 in -50.0f64..-0.1,
        sep in 1.5f64..20.0,
    ) {
        let p2 = p1 * sep; // well separated
        let m = moments_of(&[p1, p2], 5);
        let model = ReducedOrderModel::from_pade(&m, 2).expect("pade builds");
        prop_assert!(model.is_stable());
        prop_assert!((model.dc_gain() - 1.0).abs() < 1e-6);
        let mut got: Vec<f64> = model.poles().iter().map(|z| z.re).collect();
        got.sort_by(f64::total_cmp);
        let mut want = [p1, p2];
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-4 * w.abs(), "{got:?} vs {want:?}");
        }
    }

    /// The step response of a recovered model matches the original
    /// pole/residue system everywhere.
    #[test]
    fn step_response_matches_original(
        p1 in -10.0f64..-0.5,
        sep in 2.0f64..8.0,
        t in 0.01f64..20.0,
    ) {
        let p2 = p1 * sep;
        let m = moments_of(&[p1, p2], 5);
        let model = ReducedOrderModel::from_pade(&m, 2).expect("pade builds");
        // Original response: 1 + Σ (r_k/p_k)e^{p_k t}.
        let poles = [p1, p2];
        let mut orig = 1.0;
        for k in 0..2 {
            let mut num = p1 * p2; // Π(−p) for 2 poles = p1·p2
            let mut den = 1.0;
            for j in 0..2 {
                if j != k {
                    den *= poles[k] - poles[j];
                }
            }
            num /= poles[k];
            orig += num / den * (poles[k] * t).exp();
        }
        let got = model.step_response(Time::from_seconds(t));
        prop_assert!((got - orig).abs() < 1e-6, "t={t}: {got} vs {orig}");
    }

    /// AWE models built from random RC lines are stable and percent-accurate
    /// against the Wyatt-exact single-pole limit... more usefully: their
    /// first 2q moments match the tree's exact moments.
    #[test]
    fn tree_model_matches_input_moments(seed in any::<u64>(), n in 2usize..12) {
        let tree = topology::random_tree(
            seed,
            n,
            (Resistance::from_ohms(1.0), Resistance::from_ohms(60.0)),
            (Inductance::ZERO, Inductance::from_nanohenries(1.0)),
            (Capacitance::from_femtofarads(20.0), Capacitance::from_picofarads(0.5)),
        );
        let sink = tree.leaves().next().expect("sink");
        let q = 2;
        let moments = rlc_moments::transfer_moments(&tree, 2 * q);
        let Ok(model) = ReducedOrderModel::from_pade(moments.at(sink), q) else {
            // Degenerate Hankel systems can occur; skip those cases.
            return Ok(());
        };
        // Nearly repeated poles make the pole/residue form intrinsically
        // ill-conditioned (residues blow up with opposite signs); moment
        // agreement degrades there through no fault of the construction.
        // Restrict the property to well-separated poles.
        let p = model.poles();
        let scale = p.iter().map(|z| z.norm()).fold(0.0f64, f64::max);
        let min_sep = (p[0] - p[1]).norm();
        prop_assume!(min_sep > 0.05 * scale);
        // Moments of the reduced model: m_j = Σ −r/p^{j+1}. A q-pole Padé
        // matches m_0 … m_{2q−1} (2q moments including m_0); m_{2q} is the
        // first unmatched one.
        for j in 1..2 * q {
            let model_mj: f64 = model
                .poles()
                .iter()
                .zip(model.residues())
                .map(|(&p, &r)| (-(r / p.powi(j as i32 + 1))).re)
                .sum::<f64>();
            let exact = moments.at(sink)[j];
            // Exact in infinite precision; the Hankel solve and root
            // extraction leave a small numerical residue that grows with
            // moment order.
            prop_assert!(
                (model_mj - exact).abs() <= 1e-3 * exact.abs().max(1e-300),
                "seed {seed} m{j}: {model_mj} vs {exact}"
            );
        }
    }
}

#[test]
fn conjugate_pole_pairs_from_ringing_moments() {
    // Moments of an underdamped 2nd-order system must produce a conjugate
    // pole pair with negative real part.
    // H = 1/(1 + s·(2ζ/ωn) + s²/ωn²), ζ=0.3, ωn=2.
    let (zeta, wn) = (0.3, 2.0);
    let b1 = 2.0 * zeta / wn;
    let b2: f64 = 1.0 / (wn * wn);
    // Series inversion for moments: m0=1, m1=−b1, m2=b1²−b2, m3=−b1³+2b1b2, m4=b1⁴−3b1²b2+b2².
    let m = [
        1.0,
        -b1,
        b1 * b1 - b2,
        -b1 * b1 * b1 + 2.0 * b1 * b2,
        b1.powi(4) - 3.0 * b1 * b1 * b2 + b2 * b2,
    ];
    let model = ReducedOrderModel::from_pade(&m, 2).expect("pade builds");
    assert!(model.is_stable());
    let p = model.poles();
    assert!((p[0] - p[1].conj()).norm() < 1e-9, "conjugate pair");
    assert!((p[0].re + zeta * wn).abs() < 1e-6);
    assert!((p[0].im.abs() - wn * (1.0f64 - zeta * zeta).sqrt()).abs() < 1e-6);
    let _ = Complex64::ZERO;
}
