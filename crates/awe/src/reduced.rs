//! Pole/residue reduced-order models and their construction from moments.

use rlc_numeric::{linalg, linalg::Matrix, poly, Complex64, Polynomial};
use rlc_tree::{NodeId, RlcTree};
use rlc_units::Time;

use crate::AweError;

/// A reduced-order voltage transfer function in pole/residue form:
/// `H(s) = Σ_k r_k / (s − p_k)`.
///
/// Constructed by Padé moment matching ([`from_pade`](Self::from_pade)),
/// as the Wyatt single-pole model ([`wyatt`](Self::wyatt)), or as the
/// Kahng–Muddu two-pole model ([`two_pole`](Self::two_pole)). The step
/// response and standard timing metrics are evaluated directly from the
/// poles and residues.
///
/// # Examples
///
/// ```
/// use rlc_awe::ReducedOrderModel;
/// use rlc_units::Time;
///
/// // A single-pole RC model with τ = 1 ns.
/// let m = ReducedOrderModel::wyatt(Time::from_nanoseconds(1.0));
/// assert!(m.is_stable());
/// assert!((m.dc_gain() - 1.0).abs() < 1e-12);
/// let d = m.delay_50().expect("monotone rise");
/// assert!((d.as_nanoseconds() - core::f64::consts::LN_2).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedOrderModel {
    poles: Vec<Complex64>,
    residues: Vec<Complex64>,
}

impl ReducedOrderModel {
    /// Builds a `q`-pole model by Padé moment matching (AWE).
    ///
    /// `moments` are the transfer-function moments `[m_0, m_1, …]` with
    /// `m_0 = 1` (as produced by [`rlc_moments::transfer_moments`]); at
    /// least `2q` moments beyond `m_0` are required.
    ///
    /// # Errors
    ///
    /// * [`AweError::ZeroOrder`] / [`AweError::InsufficientMoments`] for
    ///   bad arguments;
    /// * [`AweError::Numerical`] if the Hankel system is singular or the
    ///   pole polynomial cannot be solved — the well-known fragility of
    ///   high-order AWE.
    pub fn from_pade(moments: &[f64], order: usize) -> Result<Self, AweError> {
        if order == 0 {
            return Err(AweError::ZeroOrder);
        }
        let available = moments.len().saturating_sub(1);
        if available < 2 * order {
            return Err(AweError::InsufficientMoments { order, available });
        }
        let _span = rlc_obs::span!("awe.pade");
        rlc_obs::counter!("awe.pade.calls");
        rlc_obs::counter!("awe.pade.moments_matched", 2 * order as u64);
        let q = order;
        // Moments of physical circuits carry units of seconds^k and span
        // many decades; normalize time by |m_1| so the Hankel system is
        // well conditioned, and un-scale the poles/residues afterwards.
        let scale = if moments[1] != 0.0 {
            moments[1].abs()
        } else {
            1.0
        };
        let moments: Vec<f64> = moments
            .iter()
            .enumerate()
            .map(|(k, &m)| m / scale.powi(k as i32))
            .collect();
        // Denominator Q(s) = 1 + b_1 s + … + b_q s^q from the Hankel system
        //   Σ_{i=1..q} b_i · m_{k−i} = −m_k,   k = q … 2q−1.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(q);
        let mut rhs = Vec::with_capacity(q);
        for k in q..2 * q {
            rows.push((1..=q).map(|i| moments[k - i]).collect());
            rhs.push(-moments[k]);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let b = Matrix::from_rows(&row_refs)
            .map_err(AweError::from)?
            .solve(&rhs)
            .map_err(AweError::from)?;
        // Numerator P(s) = a_0 + … + a_{q−1} s^{q−1}: a_j = Σ_{i=0..j} b_i·m_{j−i}.
        let mut b_full = vec![1.0];
        b_full.extend_from_slice(&b);
        let a: Vec<f64> = (0..q)
            .map(|j| (0..=j).map(|i| b_full[i] * moments[j - i]).sum())
            .collect();

        let q_poly = Polynomial::new(b_full);
        let p_poly = Polynomial::new(a);
        let poles = q_poly.roots(1e-10, 2000).map_err(AweError::from)?;
        // Residues of H = P/Q at simple poles: r_k = P(p_k)/Q'(p_k).
        let dq = q_poly.derivative();
        let mut residues = Vec::with_capacity(poles.len());
        for &p in &poles {
            let denom = dq.eval_complex(p);
            if denom.norm() < 1e-300 {
                return Err(AweError::Numerical(rlc_numeric::NumericError::Degenerate {
                    context: "repeated Padé pole (defective model)",
                }));
            }
            residues.push(p_poly.eval_complex(p) / denom / scale);
        }
        let poles: Vec<Complex64> = poles.into_iter().map(|p| p / scale).collect();
        let unstable = poles.iter().filter(|p| p.re >= 0.0).count();
        if unstable > 0 {
            rlc_obs::counter!("awe.pade.unstable_poles", unstable as u64);
        }
        Ok(Self { poles, residues })
    }

    /// The Wyatt single-pole model `1/(1 + s·τ)` with τ the Elmore time
    /// constant (paper eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `elmore_tau` is not positive and finite.
    pub fn wyatt(elmore_tau: Time) -> Self {
        assert!(
            elmore_tau.is_finite() && elmore_tau.as_seconds() > 0.0,
            "Elmore time constant must be positive and finite, got {elmore_tau}"
        );
        let p = Complex64::from_real(-1.0 / elmore_tau.as_seconds());
        Self {
            poles: vec![p],
            residues: vec![-p],
        }
    }

    /// The Kahng–Muddu analytical two-pole model \[30\], built from the first
    /// two *exact* moments: `H(s) = 1/(1 + b_1 s + b_2 s²)` with
    /// `b_1 = −m_1`, `b_2 = m_1² − m_2`.
    ///
    /// # Errors
    ///
    /// Returns [`AweError::Numerical`] if `b_2 ≤ 0` (the two-pole form
    /// degenerates; physically this happens only for non-tree or
    /// pathological moment data) or the poles are defective.
    pub fn two_pole(m1: f64, m2: f64) -> Result<Self, AweError> {
        let b1 = -m1;
        let b2 = m1 * m1 - m2;
        // NaN-rejecting comparisons (a NaN moment must land in the error
        // branch), written to satisfy clippy's partial-ord lint.
        if b1.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater)
            || b2.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater)
        {
            return Err(AweError::Numerical(rlc_numeric::NumericError::Degenerate {
                context: "two-pole model requires b1 > 0 and b2 > 0",
            }));
        }
        let [p1, p2] = poly::quadratic_roots(1.0, b1, b2);
        if (p1 - p2).norm() < 1e-12 * p1.norm() {
            // Repeated pole: split infinitesimally (same device as the
            // critical-damping handling in the closed-form model).
            let eps = 1e-6;
            let pa = p1 * (1.0 - eps);
            let pb = p1 * (1.0 + eps);
            return Ok(Self::from_two_poles(pa, pb));
        }
        Ok(Self::from_two_poles(p1, p2))
    }

    /// Builds the DC-gain-1, zero-free model with the two given poles.
    fn from_two_poles(p1: Complex64, p2: Complex64) -> Self {
        // H = p1·p2/((s−p1)(s−p2)); residues: r1 = p1·p2/(p1−p2), r2 = −r1.
        let r1 = p1 * p2 / (p1 - p2);
        Self {
            poles: vec![p1, p2],
            residues: vec![r1, -r1],
        }
    }

    /// The model poles.
    pub fn poles(&self) -> &[Complex64] {
        &self.poles
    }

    /// The residues matching [`poles`](Self::poles).
    pub fn residues(&self) -> &[Complex64] {
        &self.residues
    }

    /// Model order (number of poles).
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// `true` if every pole lies strictly in the left half-plane.
    ///
    /// The paper's second-order model is stable by construction; AWE models
    /// must be checked.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// The DC gain `H(0) = Σ −r_k/p_k` (1 for an exact interconnect model).
    pub fn dc_gain(&self) -> f64 {
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(&p, &r)| -(r / p))
            .sum::<Complex64>()
            .re
    }

    /// The unit step response `y(t) = H(0) + Σ_k (r_k/p_k)·e^{p_k t}`.
    pub fn step_response(&self, t: Time) -> f64 {
        let ts = t.as_seconds();
        if ts <= 0.0 {
            return 0.0;
        }
        let mut y = Complex64::from_real(self.dc_gain());
        for (&p, &r) in self.poles.iter().zip(&self.residues) {
            y += (r / p) * (p * ts).exp();
        }
        y.re
    }

    /// First time the step response reaches `level` (of the DC gain), by
    /// scanning at a resolution set by the fastest pole and refining with
    /// Brent's method. `None` if the model is unstable or never crosses
    /// within ~40 dominant time constants.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn time_to_reach(&self, level: f64) -> Option<Time> {
        assert!(
            level > 0.0 && level < 1.0,
            "level must lie strictly between 0 and 1, got {level}"
        );
        if !self.is_stable() {
            return None;
        }
        let target = level * self.dc_gain();
        let fastest = self.poles.iter().map(|p| p.norm()).fold(0.0f64, f64::max);
        let slowest = self
            .poles
            .iter()
            .map(|p| p.re.abs())
            .fold(f64::INFINITY, f64::min);
        if fastest == 0.0 || slowest == 0.0 {
            return None;
        }
        let dt = 0.02 / fastest;
        let t_max = 40.0 / slowest;
        let mut t_prev = 0.0f64;
        let mut y_prev = 0.0f64;
        let mut t = dt;
        while t <= t_max {
            let y = self.step_response(Time::from_seconds(t));
            if y_prev < target && y >= target {
                let root = rlc_numeric::roots::brent(
                    |x| self.step_response(Time::from_seconds(x)) - target,
                    t_prev,
                    t,
                    1e-13 * t,
                    200,
                )
                .ok()?;
                return Some(Time::from_seconds(root));
            }
            y_prev = y;
            t_prev = t;
            t += dt;
        }
        None
    }

    /// The 50% propagation delay, if the response crosses it.
    pub fn delay_50(&self) -> Option<Time> {
        self.time_to_reach(0.5)
    }

    /// The 10–90% rise time, if the response crosses both levels.
    pub fn rise_time_10_90(&self) -> Option<Time> {
        Some(self.time_to_reach(0.9)? - self.time_to_reach(0.1)?)
    }
}

/// Builds a `q`-pole AWE model at node `i` of `tree` from exact tree
/// moments.
///
/// # Errors
///
/// Propagates [`ReducedOrderModel::from_pade`] failures.
///
/// # Panics
///
/// Panics if `i` does not belong to `tree`.
pub fn awe_at_node(tree: &RlcTree, i: NodeId, order: usize) -> Result<ReducedOrderModel, AweError> {
    let moments = rlc_moments::transfer_moments(tree, 2 * order);
    ReducedOrderModel::from_pade(moments.at(i), order)
}

/// Builds the Kahng–Muddu two-pole model at node `i` from the exact first
/// and second tree moments.
///
/// # Errors
///
/// Propagates [`ReducedOrderModel::two_pole`] failures.
///
/// # Panics
///
/// Panics if `i` does not belong to `tree`.
pub fn two_pole_at_node(tree: &RlcTree, i: NodeId) -> Result<ReducedOrderModel, AweError> {
    let moments = rlc_moments::transfer_moments(tree, 2);
    let m = moments.at(i);
    ReducedOrderModel::two_pole(m[1], m[2])
}

// Bring `solve_complex` users into scope without an unused import warning
// when the residue path changes.
#[allow(unused_imports)]
use linalg::solve_complex as _;

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_tree::{topology, RlcSection};
    use rlc_units::{Capacitance, Inductance, Resistance};

    fn s(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_henries(l),
            Capacitance::from_farads(c),
        )
    }

    #[test]
    fn wyatt_model_is_the_rc_exponential() {
        let m = ReducedOrderModel::wyatt(Time::from_seconds(2.0));
        assert_eq!(m.order(), 1);
        assert!(m.is_stable());
        assert!((m.dc_gain() - 1.0).abs() < 1e-12);
        for &t in &[0.5, 1.0, 4.0] {
            let y = m.step_response(Time::from_seconds(t));
            assert!((y - (1.0 - (-t / 2.0f64).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn pade_q1_recovers_single_pole_exactly() {
        // Moments of 1/(1+sτ): m_k = (−τ)^k.
        let tau = 3.0;
        let moments = [1.0, -tau, tau * tau];
        let m = ReducedOrderModel::from_pade(&moments, 1).unwrap();
        assert_eq!(m.order(), 1);
        assert!((m.poles()[0].re + 1.0 / tau).abs() < 1e-9);
        assert!((m.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // convolution over moment indices
    fn pade_q2_recovers_two_pole_system_exactly() {
        // H = 1/((1+s)(1+s/4)): poles −1, −4.
        // Moments: H = Σ m_k s^k; m1 = −(1 + 1/4) = −1.25,
        // m2 = 1 + 1/4·1 + 1/16 … easier: m_k of product = convolution of
        // geometric series: m_k = Σ_{i+j=k} (−1)^i (−1/4)^j.
        let mut moments = vec![0.0; 5];
        for k in 0..5 {
            let mut acc = 0.0;
            for i in 0..=k {
                acc += (-1.0f64).powi(i as i32) * (-0.25f64).powi((k - i) as i32);
            }
            moments[k] = acc;
        }
        let m = ReducedOrderModel::from_pade(&moments, 2).unwrap();
        let mut res: Vec<f64> = m.poles().iter().map(|p| p.re).collect();
        res.sort_by(f64::total_cmp);
        assert!((res[0] + 4.0).abs() < 1e-6, "{res:?}");
        assert!((res[1] + 1.0).abs() < 1e-6, "{res:?}");
        assert!((m.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pade_on_rc_line_matches_simulation() {
        let (line, sink) = topology::single_line(8, s(50.0, 0.0, 0.5e-12));
        let awe = awe_at_node(&line, sink, 3).unwrap();
        assert!(awe.is_stable());
        assert!((awe.dc_gain() - 1.0).abs() < 1e-6);
        // Compare the 50% delay against the transient simulator.
        let options =
            rlc_sim::SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(10.0));
        let wave = &rlc_sim::simulate(&line, &rlc_sim::Source::step(1.0), &options, &[sink])[0];
        let sim_delay = wave.delay_50(1.0).unwrap();
        let awe_delay = awe.delay_50().unwrap();
        let err = (awe_delay.as_seconds() - sim_delay.as_seconds()).abs() / sim_delay.as_seconds();
        assert!(err < 0.01, "AWE q=3 delay error {err}");
    }

    #[test]
    fn pade_on_rlc_tree_beats_two_pole_which_beats_wyatt() {
        // The expected accuracy ordering on a moderately inductive line.
        let (line, sink) = topology::single_line(6, s(20.0, 1.5e-9, 0.3e-12));
        let options =
            rlc_sim::SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(20.0));
        let wave = &rlc_sim::simulate(&line, &rlc_sim::Source::step(1.0), &options, &[sink])[0];
        let sim_delay = wave.delay_50(1.0).unwrap().as_seconds();

        let err =
            |d: Option<Time>| (d.expect("crosses").as_seconds() - sim_delay).abs() / sim_delay;
        let awe4 = err(awe_at_node(&line, sink, 4).unwrap().delay_50());
        let two = err(two_pole_at_node(&line, sink).unwrap().delay_50());
        let sums = rlc_moments::tree_sums(&line);
        let wyatt = err(ReducedOrderModel::wyatt(sums.rc(sink)).delay_50());
        // Both moment-matched models are percent-accurate; the single-pole
        // Wyatt model is an order of magnitude worse on inductive lines.
        assert!(awe4 < 0.02, "AWE err {awe4}");
        assert!(two < 0.02, "two-pole err {two}");
        assert!(
            wyatt > 5.0 * awe4.max(two),
            "Wyatt {wyatt} vs AWE {awe4} / two-pole {two}"
        );
    }

    #[test]
    fn two_pole_matches_eed_when_given_approximate_moments() {
        // Feeding the *paper's* approximate m2 = T_RC² − T_LC into the
        // two-pole construction reproduces the paper's (ζ, ω_n) poles.
        let (line, sink) = topology::single_line(3, s(10.0, 1e-9, 0.2e-12));
        let sums = rlc_moments::tree_sums(&line);
        let t_rc = sums.rc(sink).as_seconds();
        let t_lc = sums.lc(sink).as_seconds_squared();
        let m1 = -t_rc;
        let m2_approx = t_rc * t_rc - t_lc;
        let two = ReducedOrderModel::two_pole(m1, m2_approx).unwrap();

        let eed_model = eed::SecondOrderModel::from_sums(sums.rc(sink), sums.lc(sink));
        let eed_poles = eed_model.poles().unwrap();
        let mut got: Vec<(f64, f64)> = two.poles().iter().map(|p| (p.re, p.im)).collect();
        got.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut expect = eed_poles.to_vec();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, e) in got.iter().zip(&expect) {
            assert!(
                (g.0 - e.0).abs() < 1e-3 * e.0.abs() && (g.1 - e.1).abs() < 1e-3 * e.0.abs(),
                "{got:?} vs {expect:?}"
            );
        }
    }

    #[test]
    fn two_pole_underdamped_step_response_rings() {
        // b1 small relative to b2 → complex poles → overshoot.
        let m = ReducedOrderModel::two_pole(-0.4, -(1.0 - 0.4f64 * 0.4)).unwrap();
        assert!(m.poles()[0].im != 0.0);
        // Peak of the step response exceeds 1.
        let peak = (1..300)
            .map(|k| m.step_response(Time::from_seconds(k as f64 * 0.05)))
            .fold(0.0f64, f64::max);
        assert!(peak > 1.05, "peak {peak}");
    }

    #[test]
    fn two_pole_repeated_pole_is_handled() {
        // m1 = −2τ, m2 = 3τ² gives b1 = 2τ, b2 = τ² → double pole at −1/τ.
        let tau = 1.0;
        let m = ReducedOrderModel::two_pole(-2.0 * tau, 3.0 * tau * tau).unwrap();
        assert!(m.is_stable());
        let y = m.step_response(Time::from_seconds(5.0));
        // Critical response 1 − e^{−t}(1+t) at t = 5.
        assert!((y - (1.0 - (-5.0f64).exp() * 6.0)).abs() < 1e-3, "{y}");
    }

    #[test]
    fn two_pole_rejects_degenerate_moments() {
        assert!(ReducedOrderModel::two_pole(1.0, 0.0).is_err()); // b1 < 0
        assert!(ReducedOrderModel::two_pole(-1.0, 2.0).is_err()); // b2 < 0
    }

    #[test]
    fn pade_argument_validation() {
        assert!(matches!(
            ReducedOrderModel::from_pade(&[1.0, -1.0], 0),
            Err(AweError::ZeroOrder)
        ));
        assert!(matches!(
            ReducedOrderModel::from_pade(&[1.0, -1.0], 2),
            Err(AweError::InsufficientMoments { .. })
        ));
    }

    #[test]
    fn unstable_model_reports_no_delay() {
        // Hand-built unstable model.
        let m = ReducedOrderModel {
            poles: vec![Complex64::from_real(1.0)],
            residues: vec![Complex64::from_real(-1.0)],
        };
        assert!(!m.is_stable());
        assert_eq!(m.delay_50(), None);
    }

    #[test]
    fn rise_time_consistent_with_levels() {
        let m = ReducedOrderModel::wyatt(Time::from_seconds(1.0));
        let rise = m.rise_time_10_90().unwrap();
        assert!((rise.as_seconds() - 9.0f64.ln()).abs() < 1e-6);
        let t10 = m.time_to_reach(0.1).unwrap();
        let t90 = m.time_to_reach(0.9).unwrap();
        assert!((rise.as_seconds() - (t90 - t10).as_seconds()).abs() < 1e-12);
    }

    #[test]
    fn step_response_is_causal_and_settles() {
        let (line, sink) = topology::single_line(4, s(30.0, 2e-9, 0.4e-12));
        let m = awe_at_node(&line, sink, 3).unwrap();
        assert_eq!(m.step_response(Time::ZERO), 0.0);
        assert_eq!(m.step_response(Time::from_seconds(-1.0)), 0.0);
        let late = m.step_response(Time::from_nanoseconds(1000.0));
        assert!((late - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "level must lie strictly between")]
    fn time_to_reach_validates_level() {
        let m = ReducedOrderModel::wyatt(Time::from_seconds(1.0));
        let _ = m.time_to_reach(1.5);
    }
}
