//! Reduced-order interconnect models: the comparators the paper positions
//! its closed-form model against.
//!
//! * **AWE / Padé moment matching** ([`ReducedOrderModel::from_pade`],
//!   [`awe_at_node`]) — asymptotic waveform evaluation (Pillage & Rohrer
//!   \[33\]–\[35\]): match the first `2q` moments of the exact transfer
//!   function with a `q`-pole model. Arbitrarily accurate, but requires
//!   numerical pole extraction and — unlike the paper's model — **can
//!   produce unstable poles** ([`ReducedOrderModel::is_stable`]).
//! * **Wyatt single-pole** ([`ReducedOrderModel::wyatt`]) — the classic
//!   Elmore-delay-era model `1/(1 + s·T_RC)` \[16\].
//! * **Kahng–Muddu two-pole** ([`ReducedOrderModel::two_pole`]) — the
//!   analytical two-pole model from the first two *exact* moments \[30\],
//!   the closest prior work; the paper's contribution over it is a single
//!   continuous formula family, closed-form tree sums for the second
//!   moment, and rise/overshoot/settling characterization.
//!
//! # Examples
//!
//! Build a 4-pole AWE model at the sink of a line and compare its 50%
//! delay against the paper's closed-form model:
//!
//! ```
//! use rlc_tree::{RlcSection, topology};
//! use rlc_units::{Resistance, Inductance, Capacitance};
//! use rlc_awe::awe_at_node;
//!
//! let s = RlcSection::new(
//!     Resistance::from_ohms(25.0),
//!     Inductance::from_nanohenries(2.0),
//!     Capacitance::from_picofarads(0.4),
//! );
//! let (line, sink) = topology::single_line(6, s);
//! let awe = awe_at_node(&line, sink, 4)?;
//! assert!(awe.is_stable());
//! let delay = awe.delay_50().expect("crosses 50%");
//! assert!(delay.as_picoseconds() > 0.0);
//! # Ok::<(), rlc_awe::AweError>(())
//! ```

mod error;
mod reduced;

pub use error::AweError;
pub use reduced::{awe_at_node, two_pole_at_node, ReducedOrderModel};
