//! Error type for reduced-order model construction.

use core::fmt;

use rlc_numeric::NumericError;

/// Error returned when a reduced-order model cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AweError {
    /// Fewer moments were supplied than the requested order needs
    /// (`2q` moments beyond `m_0` for a `q`-pole model).
    InsufficientMoments {
        /// Requested model order.
        order: usize,
        /// Moments available (excluding `m_0`).
        available: usize,
    },
    /// The requested order is zero.
    ZeroOrder,
    /// The moment-matching linear algebra failed (singular Hankel system,
    /// defective poles, or non-convergent root finding) — the classic AWE
    /// failure mode the paper contrasts its always-stable model with.
    Numerical(NumericError),
}

impl fmt::Display for AweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AweError::InsufficientMoments { order, available } => write!(
                f,
                "a {order}-pole model needs {} moments beyond m0, got {available}",
                2 * order
            ),
            AweError::ZeroOrder => write!(f, "model order must be at least 1"),
            AweError::Numerical(e) => write!(f, "moment matching failed: {e}"),
        }
    }
}

impl std::error::Error for AweError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AweError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for AweError {
    fn from(e: NumericError) -> Self {
        AweError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = AweError::InsufficientMoments {
            order: 3,
            available: 4,
        };
        assert!(e.to_string().contains("6 moments"));
        assert!(e.source().is_none());

        let n: AweError = NumericError::NoConvergence { iterations: 5 }.into();
        assert!(n.to_string().contains("moment matching failed"));
        assert!(n.source().is_some());

        assert!(AweError::ZeroOrder.to_string().contains("at least 1"));
    }
}
