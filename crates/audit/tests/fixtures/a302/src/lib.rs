//! Fixture: a stale golden descriptor no library source emits (A302).

pub fn noop() {}
