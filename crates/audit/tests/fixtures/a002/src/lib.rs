//! Fixture: a well-formed waiver with nothing to suppress (A002).

// audit:allow(A401, reason="nothing on this line or the next panics")
pub fn noop() {}
