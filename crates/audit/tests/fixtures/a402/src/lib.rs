//! Fixture: `todo!` in a shipped library path (A402).

pub fn later() {
    todo!()
}
