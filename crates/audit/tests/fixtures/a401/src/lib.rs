//! Fixture: `panic!` in a shipped library path (A401).

pub fn require(ok: bool) {
    if !ok {
        panic!("requirement violated");
    }
}
