//! Fixture: a waiver missing its `reason` field is malformed (A001).

// audit:allow(A101)
pub fn noop() {}
