//! Fixture: an `unsafe` block with no adjacent SAFETY comment (A201).

pub fn reinterpret(x: u32) -> [u8; 4] {
    unsafe { std::mem::transmute(x) }
}
