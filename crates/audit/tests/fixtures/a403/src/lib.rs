//! Fixture: a message-less `unreachable!()` in a library path (A403).
//! A message-bearing `unreachable!("why")` documents its invariant and
//! is allowed.

pub fn pick(flag: bool) -> u8 {
    match flag {
        true => 1,
        false => 0,
        #[allow(unreachable_patterns)]
        _ => unreachable!(),
    }
}
