//! Fixture: `get_unchecked` without a `debug_assert!` in the same
//! function (A202). The SAFETY comment is well-formed, so A201 stays
//! quiet and only the missing debug guard fires.

pub fn first_byte(bytes: &[u8]) -> u8 {
    // SAFETY: callers guarantee `bytes` is nonempty (DESIGN.md §17).
    unsafe { *bytes.get_unchecked(0) }
}
