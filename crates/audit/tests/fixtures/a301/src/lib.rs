//! Fixture: a versioned report surface with no golden descriptor (A301).

pub fn render() -> String {
    String::from("{\"schema\": \"rlc-fix/1\"}")
}
