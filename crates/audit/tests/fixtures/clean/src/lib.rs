//! Fixture: a file that audits clean — hazards are either waived with a
//! reason, guarded the way the rules require, or confined to test code.

// audit:allow(A101, reason="order never reaches output; the map backs a lookup table only")
use std::collections::HashMap;
use std::time::Instant;

pub fn lookup(keys: &[&'static str]) -> HashMap<&'static str, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}

pub fn stamp() -> Instant {
    // audit:allow(A102, reason="fixture models a deliberate raw clock read behind a waiver")
    Instant::now()
}

pub fn first_byte(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    // SAFETY: callers guarantee `bytes` is nonempty (DESIGN.md §17).
    unsafe { *bytes.get_unchecked(0) }
}

pub fn checked(ok: bool) {
    if !ok {
        // audit:allow(A401, reason="documented contract panic exercised by the fixture tests")
        panic!("contract violated");
    }
}

pub fn explained(n: u8) -> bool {
    match n {
        0 => false,
        _ => unreachable!("callers normalize n to zero first"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_freely() {
        let started = std::time::Instant::now();
        assert!(started.elapsed().as_secs() < 60);
    }
}
