//! Fixture: a raw wall-clock read in a library path (A102).

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
