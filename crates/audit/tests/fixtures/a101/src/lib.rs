//! Fixture: a hash container in a library path (A101).

use std::collections::HashMap;

pub fn count(words: &[&str]) -> usize {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
