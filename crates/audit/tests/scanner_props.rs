//! Property: hazard tokens inside string literals, line comments, block
//! comments, or doc comments never reach the scanner's code channel, so
//! no rule can fire on them. A positive control confirms the same token
//! in real code *does* land in the code channel.

use proptest::prelude::*;
use proptest::sample;
use rlc_audit::scanner::{has_token, scan};

const HAZARDS: &[&str] = &[
    "HashMap",
    "HashSet",
    "Instant::now",
    "SystemTime",
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
    "get_unchecked",
    "unsafe",
];

const PADS: &[&str] = &["", "x", "note", "see also", "RLC_tree9"];

fn hazard() -> impl Strategy<Value = &'static str> {
    sample::select(HAZARDS.to_vec())
}

fn pad() -> impl Strategy<Value = &'static str> {
    sample::select(PADS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hazards_in_comments_and_strings_never_reach_code(
        token in hazard(),
        before in pad(),
        after in pad(),
        kind in 0usize..5,
    ) {
        let line = match kind {
            0 => format!("// {before} {token} {after}"),
            1 => format!("/// {before} {token} {after}"),
            2 => format!("/* {before} {token} {after} */"),
            3 => format!("let s = \"{before} {token} {after}\";"),
            _ => format!("let r = r#\"{before} {token} {after}\"#;"),
        };
        let source = format!("fn carrier() {{\n    {line}\n    let _ = 0;\n}}\n");
        let scanned = scan(&source);
        for (i, l) in scanned.lines.iter().enumerate() {
            prop_assert!(
                !has_token(&l.code, token),
                "token {token:?} leaked into the code channel at line {i}: {:?}",
                l.code
            );
        }
    }

    #[test]
    fn hazards_in_code_do_reach_code(token in hazard()) {
        // Positive control: the same token outside comment/string context
        // must land in the code channel, or the rules would be blind.
        let source = format!("fn carrier() {{\n    {token}\n}}\n");
        let scanned = scan(&source);
        let hit = scanned
            .lines
            .iter()
            .any(|l| has_token(&l.code, token));
        prop_assert!(hit, "token {token:?} missing from the code channel");
    }
}
