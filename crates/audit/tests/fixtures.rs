//! Every fixture under `tests/fixtures/` trips exactly its intended rule,
//! and the `clean` fixture audits clean while exercising the waiver and
//! guard mechanisms.

use std::path::PathBuf;

use rlc_audit::{run, AuditOptions};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn each_fixture_fires_exactly_its_rule() {
    for name in [
        "a001", "a002", "a101", "a102", "a201", "a202", "a301", "a302", "a401", "a402", "a403",
    ] {
        let report = run(&AuditOptions::new(fixture_root(name))).expect("audit run");
        let codes: Vec<&str> = report.findings.iter().map(|f| f.code.as_str()).collect();
        assert_eq!(
            codes,
            vec![name.to_uppercase()],
            "fixture {name} must fire exactly its own rule, got {:#?}",
            report.findings
        );
    }
}

#[test]
fn clean_fixture_is_clean_and_records_its_waivers() {
    let report = run(&AuditOptions::new(fixture_root("clean"))).expect("audit run");
    assert!(
        report.is_clean(),
        "clean fixture must audit clean, got {:#?}",
        report.findings
    );
    let waived: Vec<&str> = report.waivers.iter().map(|w| w.code.as_str()).collect();
    assert_eq!(waived, vec!["A101", "A102", "A401"]);
}
