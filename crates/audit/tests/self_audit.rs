//! The workspace is its own largest test corpus: the audit must come back
//! clean (every hazard fixed or waived with a reason), and the
//! `rlc-audit/1` report must be byte-identical across repeated runs and
//! across path-filter orderings.

use std::path::PathBuf;

use rlc_audit::{run, AuditOptions};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_audits_clean() {
    let report = run(&AuditOptions::new(workspace_root())).expect("audit run");
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: {} {}", f.file, f.line, f.code, f.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace must audit clean:\n{}",
        findings.join("\n")
    );
    assert!(
        !report.waivers.is_empty(),
        "the workspace documents at least one deliberate hazard via a waiver"
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let first = run(&AuditOptions::new(workspace_root()))
        .expect("audit run")
        .to_json();
    let second = run(&AuditOptions::new(workspace_root()))
        .expect("audit run")
        .to_json();
    assert_eq!(first, second);
    assert!(first.contains("\"schema\": \"rlc-audit/1\""));
}

#[test]
fn path_filters_are_order_insensitive() {
    let mut forward = AuditOptions::new(workspace_root());
    forward.filters = vec!["crates/tree".to_owned(), "crates/obs".to_owned()];
    let mut reverse = AuditOptions::new(workspace_root());
    reverse.filters = vec!["crates/obs".to_owned(), "crates/tree".to_owned()];
    let a = run(&forward).expect("audit run").to_json();
    let b = run(&reverse).expect("audit run").to_json();
    assert_eq!(a, b);
}
