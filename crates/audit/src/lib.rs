//! # rlc-audit — workspace invariant auditor
//!
//! Static analysis over this repository's *own* Rust source, guarding
//! the three contracts every shipped surface depends on:
//!
//! * **determinism** (`A1xx`) — the byte-determinism story ("reports
//!   identical at 1/2/4/8 workers") dies the moment a hash container's
//!   iteration order or a wall-clock read reaches a render path;
//! * **unsafe hygiene** (`A2xx`) — the DESIGN.md §15 packed-kernel
//!   rules (SAFETY comments citing a DESIGN section, `debug_assert!`
//!   guards next to `get_unchecked`), made checkable;
//! * **schema stability** (`A3xx`) — every `rlc-*/N` version tag must
//!   match a golden descriptor under `tests/schemas/`, so key-set
//!   changes force a version bump (the dynamic half lives in the root
//!   `schema_drift` test);
//! * **error hygiene** (`A4xx`) — panic-family macros in shipped
//!   library paths, extending the workspace `unwrap_used` deny.
//!
//! Exemptions are written down next to the code they excuse with an
//! inline `audit:allow` comment carrying the rule codes and a mandatory
//! reason string; see DESIGN.md §17 for the exact syntax and the full
//! rule catalog. There is no external parser: the scanner strips
//! comments and literals with a small state machine
//! ([`scanner`]), so patterns inside strings, comments, and doc
//! comments never fire.
//!
//! The `audit` binary runs the whole workspace through [`run`] and
//! renders either a compiler-style listing or the deterministic
//! `rlc-audit/1` JSON document.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

pub mod report;
pub mod rules;
pub mod scanner;
pub mod schema;

pub use report::{AuditReport, Finding, Waived};
pub use rules::{classify, FileClass, Rule, RULES};

/// Configuration for one audit run.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Workspace root: the directory walked for `.rs` sources.
    pub root: PathBuf,
    /// Descriptor directory; defaults to `<root>/tests/schemas`.
    pub schemas_dir: Option<PathBuf>,
    /// Path filters: when non-empty, only files whose workspace-relative
    /// path contains one of these substrings are audited — and the
    /// workspace-level schema cross-check (A301/A302) is skipped, since
    /// a partial view cannot decide staleness.
    pub filters: Vec<String>,
}

impl AuditOptions {
    /// Audits everything under `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            schemas_dir: None,
            filters: Vec::new(),
        }
    }
}

/// Runs the audit and returns the sorted report.
pub fn run(options: &AuditOptions) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_sources(&options.root, &options.root, &mut files)?;
    files.sort();

    let mut report = AuditReport::default();
    // Version tags found in library string literals, for A3xx:
    // tag -> first (file, 1-based line) in path-sorted order.
    let mut tags: BTreeMap<String, (String, usize)> = BTreeMap::new();
    // Waivers keyed by (file, covered line) for the A301 pass.
    let mut tag_waivers: BTreeMap<(String, usize), (Vec<String>, String)> = BTreeMap::new();

    for (rel, path) in &files {
        if !options.filters.is_empty() && !options.filters.iter().any(|f| rel.contains(f.as_str()))
        {
            continue;
        }
        let Some(class) = rules::classify(rel) else {
            continue;
        };
        let content = std::fs::read_to_string(path)?;
        let scanned = scanner::scan(&content);
        let waivers = rules::check_file(
            rel,
            &scanned,
            class,
            &mut report.findings,
            &mut report.waivers,
        );
        report.files += 1;

        if class == FileClass::Library {
            for (idx, line) in scanned.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for s in &line.strings {
                    for tag in schema::version_tags(s) {
                        tags.entry(tag).or_insert_with(|| (rel.clone(), idx + 1));
                    }
                }
            }
            for w in &waivers {
                for covered in [w.line, w.line + 1] {
                    tag_waivers
                        .entry((rel.clone(), covered + 1))
                        .or_insert_with(|| (w.codes.clone(), w.reason.clone()));
                }
            }
        }
    }

    if options.filters.is_empty() {
        let schemas_dir = options
            .schemas_dir
            .clone()
            .unwrap_or_else(|| options.root.join("tests/schemas"));
        schema_rules(&schemas_dir, &tags, &tag_waivers, &mut report)?;
    }

    report.sort();
    Ok(report)
}

/// A3xx: cross-checks the version tags found in library strings against
/// the descriptor files under `tests/schemas/`.
fn schema_rules(
    schemas_dir: &Path,
    tags: &BTreeMap<String, (String, usize)>,
    tag_waivers: &BTreeMap<(String, usize), (Vec<String>, String)>,
    report: &mut AuditReport,
) -> io::Result<()> {
    let mut descriptors: BTreeSet<String> = BTreeSet::new();
    if schemas_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(schemas_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        entries.sort();
        for path in entries {
            let file = format!("tests/schemas/{}", file_name(&path));
            match schema::parse_descriptor(&std::fs::read_to_string(&path)?) {
                Ok((tag, _keys)) => {
                    if schema::descriptor_file_name(&tag) != file_name(&path) {
                        report.findings.push(Finding {
                            code: "A302".to_string(),
                            file: file.clone(),
                            line: 1,
                            message: format!(
                                "descriptor file name does not match its tag {tag:?} \
                                 (expected {})",
                                schema::descriptor_file_name(&tag)
                            ),
                        });
                    }
                    descriptors.insert(tag);
                }
                Err(why) => report.findings.push(Finding {
                    code: "A302".to_string(),
                    file,
                    line: 1,
                    message: format!("unreadable descriptor: {why}"),
                }),
            }
        }
    }

    // Family name -> pinned versions, for the bump diagnostic.
    let mut families: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for tag in &descriptors {
        if let Some((family, version)) = tag.rsplit_once('/') {
            families.entry(family).or_default().push(version);
        }
    }

    for (tag, (file, line)) in tags {
        if descriptors.contains(tag) {
            continue;
        }
        let family = tag.rsplit_once('/').map(|(f, _)| f).unwrap_or(tag);
        let message = match families.get(family) {
            Some(pinned) => format!(
                "source emits {tag:?} but tests/schemas pins {family}/{}; regenerate \
                 descriptors with UPDATE_SCHEMAS=1 cargo test --test schema_drift",
                pinned.join(", ")
            ),
            None => format!(
                "source emits {tag:?} with no descriptor in tests/schemas; add one \
                 with UPDATE_SCHEMAS=1 cargo test --test schema_drift"
            ),
        };
        match tag_waivers.get(&(file.clone(), *line)) {
            Some((codes, reason)) if codes.iter().any(|c| c == "A301") => {
                report.waivers.push(Waived {
                    code: "A301".to_string(),
                    file: file.clone(),
                    line: *line,
                    reason: reason.clone(),
                });
            }
            _ => report.findings.push(Finding {
                code: "A301".to_string(),
                file: file.clone(),
                line: *line,
                message,
            }),
        }
    }

    for tag in &descriptors {
        if !tags.contains_key(tag) {
            report.findings.push(Finding {
                code: "A302".to_string(),
                file: format!("tests/schemas/{}", schema::descriptor_file_name(tag)),
                line: 1,
                message: format!(
                    "stale descriptor: no library source emits {tag:?}; delete it or \
                     restore the surface"
                ),
            });
        }
    }
    Ok(())
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Recursively collects `.rs` files under `dir` as
/// `(workspace-relative forward-slash path, absolute path)` pairs.
/// Hidden directories, `target/`, and `vendor/` are never entered.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let name = file_name(&entry);
        if entry.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" {
                continue;
            }
            collect_sources(root, &entry, out)?;
        } else if name.ends_with(".rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, entry));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_paths() {
        assert_eq!(
            classify("crates/tree/src/netlist.rs"),
            Some(FileClass::Library)
        );
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Library));
        assert_eq!(
            classify("crates/serve/src/bin/serve.rs"),
            Some(FileClass::Bin)
        );
        assert_eq!(classify("crates/engine/tests/loom_service.rs"), None);
        assert_eq!(classify("examples/buffer_synthesis.rs"), None);
        assert_eq!(classify("crates/bench/benches/engine.rs"), None);
        assert_eq!(classify("vendor/proptest/src/lib.rs"), None);
        assert_eq!(classify("crates/tree/src/netlist.txt"), None);
    }
}
