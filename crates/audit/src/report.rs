//! The `rlc-audit/1` report: deterministic JSON plus a human rendering.
//!
//! Findings and waivers are sorted by `(file, line, code)` before
//! rendering, paths are workspace-relative with forward slashes, and no
//! clock or machine identity is embedded — so the bytes are identical
//! across repeated runs, path orderings, and machines.

use core::fmt::Write as _;

use rlc_obs::json;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: String,
    /// Workspace-relative forward-slash path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

/// One suppressed violation, with the waiver reason that excused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waived {
    pub code: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// The result of one audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Number of files in audit scope that were scanned.
    pub files: usize,
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waived>,
}

impl AuditReport {
    /// `true` when no rule fired (waived findings do not count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and waivers into the canonical render order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
    }

    /// Renders the stable `rlc-audit/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"rlc-audit/1\",\n");
        let _ = writeln!(out, "  \"files\": {},", self.files);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"code\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json::quote(&f.code),
                json::quote(&f.file),
                f.line,
                json::quote(&f.message),
            );
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"code\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json::quote(&w.code),
                json::quote(&w.file),
                w.line,
                json::quote(&w.reason),
            );
        }
        out.push_str(if self.waivers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = write!(
            out,
            "  \"summary\": {{\"findings\": {}, \"waivers\": {}}}\n}}",
            self.findings.len(),
            self.waivers.len(),
        );
        out
    }

    /// Renders a compiler-style human listing.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.code, f.message);
        }
        let _ = writeln!(
            out,
            "audit: {} files, {} findings, {} waived",
            self.files,
            self.findings.len(),
            self.waivers.len(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_stable_skeleton() {
        let report = AuditReport::default();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"rlc-audit/1\","));
        assert!(json.contains("\"findings\": [],"));
        assert!(json.contains("\"summary\": {\"findings\": 0, \"waivers\": 0}"));
        rlc_obs::json::parse(&json).expect("report is valid JSON");
    }

    #[test]
    fn sort_orders_by_file_line_code() {
        let mut report = AuditReport::default();
        for (code, file, line) in [
            ("A401", "b.rs", 2),
            ("A101", "a.rs", 9),
            ("A102", "a.rs", 1),
        ] {
            report.findings.push(Finding {
                code: code.into(),
                file: file.into(),
                line,
                message: String::new(),
            });
        }
        report.sort();
        let order: Vec<(&str, usize)> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(order, vec![("a.rs", 1), ("a.rs", 9), ("b.rs", 2)]);
    }
}
