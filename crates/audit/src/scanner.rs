//! Comment/string-aware line scanner for Rust source.
//!
//! The auditor has no type information and no external parser (the same
//! vendored-only constraint as the rest of the workspace), so every rule
//! is a token test over *stripped* source. The stripper is a small state
//! machine that walks a file once and splits each physical line into
//! three channels:
//!
//! * `code` — the line with comments removed and string/char literal
//!   *contents* blanked (the delimiting quotes survive, so `"HashMap"`
//!   becomes `""` in the code channel and can never trip a rule);
//! * `comment` — the concatenated text of every comment on the line
//!   (line, doc, and block comments), which is where `SAFETY:` notes and
//!   `audit:allow` waiver markers live;
//! * `strings` — the contents of string literals *starting* on the line,
//!   which is where the schema-stability tier looks for `rlc-*/N`
//!   version tags.
//!
//! On top of the stripped lines a second pass does brace-depth
//! bookkeeping to (a) mark `#[cfg(test)]` / `#[test]` regions, which are
//! exempt from every rule, and (b) assign each line to its innermost
//! enclosing `fn`, which the `get_unchecked`/`debug_assert!` rule needs.
//! The scope pass is a heuristic — it counts braces in the code channel
//! and recognizes `fn` as a token — and its known limitations are listed
//! in DESIGN.md §17.

/// One physical source line, split into scanner channels.
#[derive(Debug, Default, Clone)]
pub struct ScanLine {
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text (without the comment delimiters).
    pub comment: String,
    /// Contents of string literals that *start* on this line (a literal
    /// spanning lines is attached whole to its starting line).
    pub strings: Vec<String>,
    /// Line lies inside a `#[cfg(test)]` or `#[test]` scope.
    pub in_test: bool,
    /// Innermost enclosing function, as an index into the file's
    /// function table (`None` at module level).
    pub fn_idx: Option<usize>,
}

/// A whole scanned file: stripped lines plus the function count used to
/// size per-function lookup tables.
#[derive(Debug, Default)]
pub struct ScannedFile {
    pub lines: Vec<ScanLine>,
    pub fn_count: usize,
}

/// `true` when `text` contains `token` with no identifier character on
/// either side (so `unsafe` does not match `unsafe_code`).
pub fn has_token(text: &str, token: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `content` into stripped lines with test/function scope marks.
pub fn scan(content: &str) -> ScannedFile {
    let mut lines = strip(content);
    let fn_count = mark_scopes(&mut lines);
    ScannedFile { lines, fn_count }
}

enum Mode {
    Code,
    LineComment,
    /// Nesting depth of `/* ... */` comments.
    BlockComment(u32),
    /// Ordinary string literal (supports `\` escapes, may span lines).
    Str,
    /// Raw string literal closed by `"` followed by this many `#`s.
    RawStr(usize),
}

/// First pass: split the file into per-line code/comment/string channels.
fn strip(content: &str) -> Vec<ScanLine> {
    let chars: Vec<char> = content.chars().collect();
    let mut lines: Vec<ScanLine> = Vec::new();
    let mut cur = ScanLine::default();
    // String-literal contents accumulate here and attach to the line the
    // literal started on once it closes (it may close lines later).
    let mut literal = String::new();
    let mut literal_line = 0usize;
    let mut pending_literals: Vec<(usize, String)> = Vec::new();
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => mode = Mode::Code,
                Mode::Str | Mode::RawStr(_) => literal.push('\n'),
                _ => {}
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        literal_line = lines.len();
                        literal.clear();
                        mode = Mode::Str;
                        i += 1;
                    }
                    'r' | 'b' if !prev_is_ident(&cur.code) => {
                        // Possible raw/byte literal prefix: r"", r#""#,
                        // b"", br"", b''. Fall back to a plain
                        // identifier character when the lookahead does
                        // not match a literal start.
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0usize;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = c == 'r' || chars.get(i + 1) == Some(&'r');
                        if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) {
                            cur.code.push('"');
                            literal_line = lines.len();
                            literal.clear();
                            mode = if is_raw {
                                Mode::RawStr(hashes)
                            } else {
                                Mode::Str
                            };
                            i = j + 1;
                        } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                            // Byte char literal b'x'.
                            i = skip_char_literal(&chars, i + 1);
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: escapes are always
                        // char literals; `'x'` is a char literal; else a
                        // lifetime (`'a`, `'_`), which stays in code.
                        if chars.get(i + 1) == Some(&'\\')
                            || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''))
                        {
                            i = skip_char_literal(&chars, i);
                        } else {
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    match chars.get(i + 1) {
                        // Escaped newline (line continuation): the
                        // physical line still ends here.
                        Some('\n') => lines.push(std::mem::take(&mut cur)),
                        Some(&escaped) => literal.push(escaped),
                        None => {}
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    pending_literals.push((literal_line, std::mem::take(&mut literal)));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    literal.push(c);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                let closes = c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    cur.code.push('"');
                    pending_literals.push((literal_line, std::mem::take(&mut literal)));
                    mode = Mode::Code;
                    i += 1 + hashes;
                } else {
                    literal.push(c);
                    i += 1;
                }
            }
        }
    }
    // Unterminated literal at EOF: keep what accumulated.
    if !literal.is_empty() {
        pending_literals.push((literal_line, literal));
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    for (line, text) in pending_literals {
        if let Some(slot) = lines.get_mut(line) {
            slot.strings.push(text);
        }
    }
    lines
}

/// `true` when the last code character is an identifier character (so an
/// `r` or `b` ending an identifier like `ptr` is not a literal prefix).
fn prev_is_ident(code: &str) -> bool {
    code.bytes().last().is_some_and(is_ident)
}

/// Skips a char literal starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_char_literal(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' | '\n' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[derive(Clone, Copy, PartialEq)]
enum ScopeKind {
    Plain,
    Fn(usize),
    Test,
}

/// Second pass: brace-depth bookkeeping over the code channel. Marks
/// test regions, assigns lines to their innermost `fn`, and returns the
/// number of functions seen.
fn mark_scopes(lines: &mut [ScanLine]) -> usize {
    let mut stack: Vec<ScopeKind> = Vec::new();
    // Code accumulated since the last `{`, `}`, or `;` — the text that
    // decides what kind of scope an opening brace starts.
    let mut head = String::new();
    let mut fn_count = 0usize;

    for line in lines.iter_mut() {
        let mut in_test = stack.contains(&ScopeKind::Test);
        let mut fn_idx = innermost_fn(&stack);
        for c in line.code.chars() {
            match c {
                '{' => {
                    let kind = if head.contains("cfg(test") || head.contains("#[test]") {
                        ScopeKind::Test
                    } else if has_token(&head, "fn") {
                        let idx = fn_count;
                        fn_count += 1;
                        fn_idx = Some(idx);
                        ScopeKind::Fn(idx)
                    } else {
                        ScopeKind::Plain
                    };
                    if kind == ScopeKind::Test {
                        in_test = true;
                    }
                    stack.push(kind);
                    head.clear();
                }
                '}' => {
                    stack.pop();
                    head.clear();
                }
                ';' => head.clear(),
                _ => head.push(c),
            }
        }
        head.push(' ');
        line.in_test = in_test || stack.contains(&ScopeKind::Test);
        line.fn_idx = fn_idx;
    }
    fn_count
}

fn innermost_fn(stack: &[ScopeKind]) -> Option<usize> {
    stack.iter().rev().find_map(|kind| match kind {
        ScopeKind::Fn(idx) => Some(*idx),
        _ => None,
    })
}

/// An inline waiver: `audit:allow` followed by a parenthesized list of
/// rule codes and a mandatory `reason="..."`, written in a comment on
/// the offending line or the line directly above it.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 0-based line of the waiver comment.
    pub line: usize,
    pub codes: Vec<String>,
    pub reason: String,
}

/// Result of scanning one line's comment for a waiver marker.
pub enum WaiverScan {
    None,
    Malformed(String),
    Found(Waiver),
}

/// Parses a waiver marker out of a line's comment text.
pub fn parse_waiver(comment: &str, line: usize) -> WaiverScan {
    let marker = "audit:allow(";
    let Some(start) = comment.find(marker) else {
        return WaiverScan::None;
    };
    let mut rest = &comment[start + marker.len()..];
    let mut codes = Vec::new();
    let mut reason: Option<String> = None;
    loop {
        rest = rest.trim_start_matches([' ', ',']);
        if let Some(after) = rest.strip_prefix(')') {
            let _ = after;
            break;
        }
        if let Some(r) = rest.strip_prefix("reason=\"") {
            let Some(end) = r.find('"') else {
                return WaiverScan::Malformed("unterminated reason string".into());
            };
            reason = Some(r[..end].to_string());
            rest = &r[end + 1..];
            continue;
        }
        let token: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if token.is_empty() {
            return WaiverScan::Malformed("expected a rule code or reason".into());
        }
        let valid = token.len() == 4
            && token.starts_with('A')
            && token[1..].chars().all(|c| c.is_ascii_digit());
        if !valid {
            return WaiverScan::Malformed(format!("{token:?} is not a rule code"));
        }
        rest = &rest[token.len()..];
        codes.push(token);
    }
    if codes.is_empty() {
        return WaiverScan::Malformed("waiver lists no rule codes".into());
    }
    let Some(reason) = reason else {
        return WaiverScan::Malformed("waiver has no reason=\"...\"".into());
    };
    if reason.trim().is_empty() {
        return WaiverScan::Malformed("waiver reason is empty".into());
    }
    WaiverScan::Found(Waiver {
        line,
        codes,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 1; /* Instant::now */\n";
        let scanned = scan(src);
        assert!(!scanned.lines[0].code.contains("HashMap"));
        assert!(scanned.lines[0].comment.contains("HashMap"));
        assert_eq!(scanned.lines[0].strings, vec!["HashMap".to_string()]);
        assert!(!scanned.lines[1].code.contains("Instant"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n';\nlet l: &'static str = \"\";\n";
        let scanned = scan(src);
        assert!(!scanned.lines[0].code.contains("panic"));
        assert_eq!(scanned.lines[0].strings.len(), 1);
        assert!(scanned.lines[0].strings[0].contains("panic!"));
        assert!(!scanned.lines[1].code.contains('n'));
        assert!(scanned.lines[2].code.contains("'static"));
    }

    #[test]
    fn multiline_string_attaches_to_start_line() {
        let src = "let s = \"one\ntwo\";\nlet t = 3;\n";
        let scanned = scan(src);
        assert_eq!(scanned.lines[0].strings, vec!["one\ntwo".to_string()]);
        assert!(scanned.lines[1].strings.is_empty());
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let scanned = scan(src);
        assert!(scanned.lines[0].code.contains("let x"));
        assert!(scanned.lines[0].comment.contains("inner"));
        assert!(!scanned.lines[0].code.contains("outer"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = 1; }\n}\nfn lib2() {}\n";
        let scanned = scan(src);
        assert!(!scanned.lines[0].in_test);
        assert!(scanned.lines[3].in_test);
        assert!(!scanned.lines[5].in_test);
    }

    #[test]
    fn fn_scopes_are_assigned() {
        let src = "fn a() {\n    let x = 1;\n}\nfn b() {\n    let y = 2;\n}\n";
        let scanned = scan(src);
        assert_eq!(scanned.fn_count, 2);
        assert_eq!(scanned.lines[1].fn_idx, Some(0));
        assert_eq!(scanned.lines[4].fn_idx, Some(1));
    }

    #[test]
    fn waiver_parses_codes_and_reason() {
        let comment = " audit:allow(A101, A401, reason=\"hash keyed by design\")";
        match parse_waiver(comment, 7) {
            WaiverScan::Found(w) => {
                assert_eq!(w.codes, vec!["A101".to_string(), "A401".to_string()]);
                assert_eq!(w.reason, "hash keyed by design");
                assert_eq!(w.line, 7);
            }
            _ => unreachable!("waiver must parse"),
        }
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        assert!(matches!(
            parse_waiver(" audit:allow(A101)", 0),
            WaiverScan::Malformed(_)
        ));
        assert!(matches!(
            parse_waiver(" audit:allow(reason=\"no codes\")", 0),
            WaiverScan::Malformed(_)
        ));
        assert!(matches!(
            parse_waiver(" audit:allow(L101, reason=\"bad code\")", 0),
            WaiverScan::Malformed(_)
        ));
    }

    #[test]
    fn has_token_respects_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("unsafe_code", "unsafe"));
        assert!(!has_token("not_unsafe", "unsafe"));
        assert!(has_token("core::panic!(", "panic!"));
    }
}
