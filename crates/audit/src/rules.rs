//! The audit rule catalog and the per-file checker.
//!
//! Codes are stable; see DESIGN.md §17 for the full catalog with
//! semantics and remediation guidance. Tiers:
//!
//! * `A0xx` — waiver hygiene (malformed or unused waivers);
//! * `A1xx` — determinism hazards (hash containers, wall clocks);
//! * `A2xx` — unsafe hygiene (the DESIGN §15 packed-kernel rules);
//! * `A3xx` — schema stability (checked at workspace level in `lib.rs`);
//! * `A4xx` — error hygiene (panic-family macros in shipped paths).

use crate::report::{Finding, Waived};
use crate::scanner::{has_token, parse_waiver, ScannedFile, Waiver, WaiverScan};

/// Catalog entry for one rule code.
pub struct Rule {
    pub code: &'static str,
    pub summary: &'static str,
}

/// Every rule the auditor can emit, in code order.
pub const RULES: &[Rule] = &[
    Rule {
        code: "A001",
        summary: "malformed waiver marker (codes and a reason=\"...\" are required)",
    },
    Rule {
        code: "A002",
        summary: "waiver suppresses nothing on its line or the line below",
    },
    Rule {
        code: "A101",
        summary: "hash container in a library path; use BTree collections or waive with the reason iteration order never reaches output",
    },
    Rule {
        code: "A102",
        summary: "wall-clock read outside the TimeSource abstraction in a library path",
    },
    Rule {
        code: "A201",
        summary: "unsafe without an adjacent SAFETY comment citing a DESIGN.md section",
    },
    Rule {
        code: "A202",
        summary: "get_unchecked without a debug_assert! in the same function",
    },
    Rule {
        code: "A301",
        summary: "schema version string without a matching descriptor in tests/schemas",
    },
    Rule {
        code: "A302",
        summary: "stale schema descriptor: no library source emits this version string",
    },
    Rule {
        code: "A401",
        summary: "panic! in a shipped library path",
    },
    Rule {
        code: "A402",
        summary: "todo!/unimplemented! in a shipped library path",
    },
    Rule {
        code: "A403",
        summary: "message-less unreachable!() in a shipped library path (state the invariant)",
    },
];

/// Looks up a rule's one-line summary.
pub fn summary(code: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.code == code)
        .map(|r| r.summary)
        .unwrap_or("unknown rule")
}

/// How a scanned file participates in the rule tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipped library source: every tier applies.
    Library,
    /// Binary / build-script source: only unsafe hygiene (A2xx) applies —
    /// CLIs may read wall clocks and exit via panics.
    Bin,
}

/// Classifies a workspace-relative (forward-slash) path, or `None` when
/// the file is out of audit scope (tests, benches, examples, fixtures,
/// vendored code).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let in_dir =
        |dir: &str| rel.starts_with(&format!("{dir}/")) || rel.contains(&format!("/{dir}/"));
    if in_dir("vendor")
        || in_dir("target")
        || in_dir("tests")
        || in_dir("benches")
        || in_dir("examples")
        || in_dir("fixtures")
    {
        return None;
    }
    if rel.contains("/src/bin/") || rel.ends_with("build.rs") {
        return Some(FileClass::Bin);
    }
    Some(FileClass::Library)
}

/// Runs every per-file rule over one scanned file. A3xx runs at the
/// workspace level instead (it needs the descriptor set), but its
/// waivers are honored here via the shared waiver table.
pub fn check_file(
    rel: &str,
    scanned: &ScannedFile,
    class: FileClass,
    findings: &mut Vec<Finding>,
    waived: &mut Vec<Waived>,
) -> Vec<Waiver> {
    let mut raw: Vec<Finding> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        match parse_waiver(&line.comment, idx) {
            WaiverScan::None => {}
            WaiverScan::Malformed(why) => raw.push(finding("A001", rel, idx, why)),
            WaiverScan::Found(w) => waivers.push(w),
        }
    }

    if class == FileClass::Library {
        determinism_rules(rel, scanned, &mut raw);
        error_rules(rel, scanned, &mut raw);
    }
    unsafe_rules(rel, scanned, &mut raw);

    apply_waivers(rel, raw, &waivers, findings, waived);
    waivers
}

/// A1xx: hash containers and wall-clock reads.
fn determinism_rules(rel: &str, scanned: &ScannedFile, raw: &mut Vec<Finding>) {
    // A101 fires once per file, at the first hash-container mention:
    // justifying one hash-keyed concern justifies the file, and keeping
    // hash containers to one concern per file keeps that sound.
    let hash_line = scanned.lines.iter().enumerate().find(|(_, line)| {
        !line.in_test && (has_token(&line.code, "HashMap") || has_token(&line.code, "HashSet"))
    });
    if let Some((idx, line)) = hash_line {
        let which = if has_token(&line.code, "HashMap") {
            "HashMap"
        } else {
            "HashSet"
        };
        raw.push(finding(
            "A101",
            rel,
            idx,
            format!(
                "{which} in a library path: iteration order is nondeterministic; \
                 use a BTree collection, sort before rendering, or waive with the \
                 reason order never reaches output"
            ),
        ));
    }

    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for clock in ["Instant::now", "SystemTime"] {
            if has_token(&line.code, clock) {
                raw.push(finding(
                    "A102",
                    rel,
                    idx,
                    format!("{clock} in a library path: route clock reads through TimeSource"),
                ));
            }
        }
    }
}

/// A2xx: SAFETY comments and guarded `get_unchecked`.
fn unsafe_rules(rel: &str, scanned: &ScannedFile, raw: &mut Vec<Finding>) {
    // Per-function debug_assert! presence, for A202.
    let mut fn_has_guard = vec![false; scanned.fn_count];
    for line in &scanned.lines {
        if let Some(f) = line.fn_idx {
            if line.code.contains("debug_assert") {
                fn_has_guard[f] = true;
            }
        }
    }

    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "unsafe") && !safety_comment_adjacent(scanned, idx) {
            raw.push(finding(
                "A201",
                rel,
                idx,
                "unsafe without an adjacent SAFETY comment citing a DESIGN.md section \
                 (expected \"SAFETY:\" and \"DESIGN.md \u{00a7}\" in the comment block)"
                    .to_string(),
            ));
        }
        if line.code.contains("get_unchecked") {
            let guarded = line.fn_idx.is_some_and(|f| fn_has_guard[f]);
            if !guarded {
                raw.push(finding(
                    "A202",
                    rel,
                    idx,
                    "get_unchecked without a debug_assert! in the same function: \
                     assert the index invariant the skipped bounds check relies on"
                        .to_string(),
                ));
            }
        }
    }
}

/// The comment on the flagged line, or the contiguous comment-only block
/// directly above it, must contain the SAFETY marker and a DESIGN.md
/// section citation.
fn safety_comment_adjacent(scanned: &ScannedFile, idx: usize) -> bool {
    let mut text = scanned.lines[idx].comment.clone();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = &scanned.lines[j];
        if above.comment.is_empty() || !above.code.trim().is_empty() {
            break;
        }
        text.push(' ');
        text.push_str(&above.comment);
    }
    text.contains("SAFETY") && text.contains("DESIGN.md \u{00a7}")
}

/// A4xx: panic-family macros in shipped paths.
fn error_rules(rel: &str, scanned: &ScannedFile, raw: &mut Vec<Finding>) {
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "panic!") {
            raw.push(finding(
                "A401",
                rel,
                idx,
                "panic! in a shipped library path: return a typed error, or waive \
                 with the documented contract that makes the panic deliberate"
                    .to_string(),
            ));
        }
        for m in ["todo!", "unimplemented!"] {
            if has_token(&line.code, m) {
                raw.push(finding(
                    "A402",
                    rel,
                    idx,
                    format!("{m} in a shipped library path: unfinished code must not ship"),
                ));
            }
        }
        if bare_unreachable(&line.code) {
            raw.push(finding(
                "A403",
                rel,
                idx,
                "message-less unreachable!(): state the invariant that makes the \
                 arm unreachable, so the panic text identifies the broken assumption"
                    .to_string(),
            ));
        }
    }
}

/// `true` when the line invokes `unreachable!` with no arguments.
/// A message-bearing `unreachable!("...")` documents its invariant and is
/// the accepted idiom for asserting impossible states.
fn bare_unreachable(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("unreachable!") {
        let after = &code[from + pos + "unreachable!".len()..];
        let inner = after.trim_start();
        if let Some(args) = inner.strip_prefix('(') {
            if args.trim_start().starts_with(')') {
                return true;
            }
        }
        from += pos + "unreachable!".len();
    }
    false
}

/// Applies the file's waivers: a waiver covers findings on its own line
/// and the line directly below it. Suppressed findings are recorded with
/// their reasons; waivers that suppress nothing become A002 findings.
fn apply_waivers(
    rel: &str,
    raw: Vec<Finding>,
    waivers: &[Waiver],
    findings: &mut Vec<Finding>,
    waived: &mut Vec<Waived>,
) {
    let mut used = vec![false; waivers.len()];
    for f in raw {
        // `w.line` is the 0-based scan index of the waiver comment;
        // findings carry 1-based lines. A waiver covers its own line and
        // the line directly below it.
        let cover = waivers.iter().enumerate().find(|(_, w)| {
            (w.line + 1 == f.line || w.line + 2 == f.line) && w.codes.iter().any(|c| c == &f.code)
        });
        match cover {
            Some((wi, w)) => {
                used[wi] = true;
                waived.push(Waived {
                    code: f.code,
                    file: f.file,
                    line: f.line,
                    reason: w.reason.clone(),
                });
            }
            None => findings.push(f),
        }
    }
    for (wi, w) in waivers.iter().enumerate() {
        // A301 coverage is decided later, at workspace level, so a waiver
        // carrying that code is never "unused" from this file-local view.
        if !used[wi] && !w.codes.iter().any(|c| c == "A301") {
            findings.push(finding(
                "A002",
                rel,
                w.line,
                format!(
                    "unused waiver for {}: nothing to suppress on this line or the next",
                    w.codes.join(", ")
                ),
            ));
        }
    }
}

fn finding(code: &str, file: &str, line: usize, message: String) -> Finding {
    Finding {
        code: code.to_string(),
        file: file.to_string(),
        // Report 1-based line numbers, like every compiler.
        line: line + 1,
        message,
    }
}
