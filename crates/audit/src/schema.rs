//! Schema descriptors: the key-set fingerprint of a report surface.
//!
//! A descriptor is a small JSON file under `tests/schemas/` pinning one
//! `rlc-*/N` surface: the version tag plus the sorted set of key paths
//! its rendered documents may contain (`nets[].delays.sink` style, with
//! `[]` marking array traversal). The root `schema_drift` test renders
//! exemplar documents for every surface and byte-compares freshly
//! extracted descriptors against the checked-in ones — changing a
//! surface's key set without bumping `N` fails there, and the static
//! A301/A302 rules catch version strings and descriptors drifting out
//! of step with each other without running any report code.

use std::collections::BTreeSet;

use rlc_obs::json::{self, Value};

/// Collects every key path in `doc` into `out`. Object keys append to
/// the dotted path; array elements contribute under `path[]`.
pub fn key_paths(doc: &Value, prefix: &str, out: &mut BTreeSet<String>) {
    match doc {
        Value::Object(map) => {
            for (key, child) in map {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.insert(path.clone());
                key_paths(child, &path, out);
            }
        }
        Value::Array(items) => {
            let path = format!("{prefix}[]");
            for child in items {
                key_paths(child, &path, out);
            }
        }
        _ => {}
    }
}

/// Parses a JSON document and returns its key-path set.
pub fn document_keys(doc: &str) -> Result<BTreeSet<String>, String> {
    let value = json::parse(doc).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let mut out = BTreeSet::new();
    key_paths(&value, "", &mut out);
    Ok(out)
}

/// Renders a descriptor document for `tag` (e.g. `rlc-obs/1`).
pub fn descriptor_json(tag: &str, keys: &BTreeSet<String>) -> String {
    use core::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json::quote(tag));
    out.push_str("  \"keys\": [");
    for (i, key) in keys.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}", json::quote(key));
    }
    out.push_str(if keys.is_empty() { "]\n}" } else { "\n  ]\n}" });
    out.push('\n');
    out
}

/// Parses a descriptor document into `(tag, keys)`.
pub fn parse_descriptor(doc: &str) -> Result<(String, BTreeSet<String>), String> {
    let value = json::parse(doc).map_err(|e| format!("invalid descriptor JSON: {e:?}"))?;
    let tag = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("descriptor has no \"schema\" string")?
        .to_string();
    let keys = value
        .get("keys")
        .and_then(Value::as_array)
        .ok_or("descriptor has no \"keys\" array")?
        .iter()
        .map(|k| {
            k.as_str()
                .map(str::to_string)
                .ok_or_else(|| "non-string key entry".to_string())
        })
        .collect::<Result<BTreeSet<String>, String>>()?;
    Ok((tag, keys))
}

/// The canonical descriptor file name for a version tag:
/// `rlc-obs/1` → `rlc-obs-1.json`.
pub fn descriptor_file_name(tag: &str) -> String {
    format!("{}.json", tag.replace('/', "-"))
}

/// Extracts every `rlc-<name>/<digits>` version tag embedded in `text`.
pub fn version_tags(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut tags = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find("rlc-") {
        let start = from + pos;
        let mut end = start + 4;
        while end < bytes.len() && (bytes[end].is_ascii_lowercase() || bytes[end] == b'-') {
            end += 1;
        }
        let mut cursor = end;
        if end > start + 4 && cursor < bytes.len() && bytes[cursor] == b'/' {
            cursor += 1;
            let digits_start = cursor;
            while cursor < bytes.len() && bytes[cursor].is_ascii_digit() {
                cursor += 1;
            }
            if cursor > digits_start {
                tags.push(text[start..cursor].to_string());
                from = cursor;
                continue;
            }
        }
        from = end.max(start + 4);
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_paths_cover_nesting_and_arrays() {
        let keys = document_keys(
            "{\"schema\": \"x\", \"nets\": [{\"name\": \"a\", \"delays\": {\"sink\": 1}}]}",
        )
        .expect("parses");
        let expect: BTreeSet<String> = [
            "schema",
            "nets",
            "nets[].name",
            "nets[].delays",
            "nets[].delays.sink",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn descriptor_roundtrip() {
        let mut keys = BTreeSet::new();
        keys.insert("schema".to_string());
        keys.insert("nets[].name".to_string());
        let doc = descriptor_json("rlc-engine/1", &keys);
        let (tag, parsed) = parse_descriptor(&doc).expect("roundtrips");
        assert_eq!(tag, "rlc-engine/1");
        assert_eq!(parsed, keys);
    }

    #[test]
    fn version_tags_are_extracted() {
        assert_eq!(
            version_tags("{\"schema\": \"rlc-obs/1\"} and rlc-engine/12 too"),
            vec!["rlc-obs/1".to_string(), "rlc-engine/12".to_string()]
        );
        assert!(version_tags("rlc- no tag, rlc-x/ no digits").is_empty());
        assert_eq!(
            version_tags("rlc-verify-synth/1"),
            vec!["rlc-verify-synth/1".to_string()]
        );
    }

    #[test]
    fn file_name_mapping() {
        assert_eq!(descriptor_file_name("rlc-obs/1"), "rlc-obs-1.json");
    }
}
