//! `audit` — the workspace invariant auditor.
//!
//! ```text
//! audit [--json] [--deny] [--root DIR] [--schemas DIR] [filter...]
//! audit --rules
//! ```
//!
//! Walks the workspace (default: the repository containing this crate),
//! audits every shipped `.rs` source, and prints either a compiler-style
//! listing or the deterministic `rlc-audit/1` JSON document. Positional
//! arguments are substring filters on workspace-relative paths; passing
//! any filter also skips the workspace-level schema cross-check
//! (A301/A302), which needs the full view. The report bytes are
//! identical across repeated runs and filter orderings.
//!
//! Exit status: `0` when clean (or when findings exist but `--deny` was
//! not given), `1` when `--deny` is set and any rule fired, `2` on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use rlc_audit::{run, AuditOptions, RULES};

struct Options {
    json: bool,
    deny: bool,
    audit: AuditOptions,
}

fn usage() -> ExitCode {
    eprintln!("usage: audit [--json] [--deny] [--root DIR] [--schemas DIR] [filter...]");
    eprintln!("       audit --rules");
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // The audit crate lives at <workspace>/crates/audit.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        json: false,
        deny: false,
        audit: AuditOptions::new(default_root()),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => opts.deny = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                opts.audit.root = PathBuf::from(dir);
            }
            "--schemas" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                opts.audit.schemas_dir = Some(PathBuf::from(dir));
            }
            "--rules" => {
                print_rules();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: audit [--json] [--deny] [--root DIR] [--schemas DIR] [filter...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("audit: unknown flag {other:?}");
                return usage();
            }
            other => opts.audit.filters.push(other.to_string()),
        }
    }
    // Filter order must not affect the report bytes.
    opts.audit.filters.sort();
    opts.audit.filters.dedup();

    let report = match run(&opts.audit) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("audit: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    if opts.deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_rules() {
    println!("rlc-audit rule catalog (see DESIGN.md \u{00a7}17):");
    for rule in RULES {
        println!("  {} {}", rule.code, rule.summary);
    }
}
