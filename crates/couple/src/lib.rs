//! Coupled-net crosstalk analysis over the Equivalent Elmore Delay model.
//!
//! The EED paper (Ismail–Friedman–Neves, TCAD 2000) analyzes isolated RLC
//! trees, but its target workloads — timing-driven synthesis in deep
//! submicron — are dominated by *coupled* nets. This crate closes that gap
//! with the standard closed-form decoupling approximations (cf.
//! arXiv:1304.0835 for RC-coupled delay models and arXiv:1004.4458 for
//! RC/RLC crosstalk noise):
//!
//! * **Miller-factor delay change.** Each coupling capacitor `Cc` between a
//!   victim node and an aggressor node is replaced by a grounded capacitor
//!   `k·Cc` at the victim node, where the Miller factor `k` encodes the
//!   aggressor's switching alignment: `k = 1` for a quiet aggressor
//!   (nominal), `k = 2` when the aggressor switches opposite to the victim
//!   (worst case), and `k = 0` when it switches in the same direction (best
//!   case). The folded tree is then analyzed with the unmodified O(n) EED
//!   machinery, so the victim's 50% delay comes out once per scenario and
//!   the *delay-change window* is `[best − nominal, worst − nominal]`.
//! * **Noise peak (quiet victim).** A Devgan-style upper bound: an
//!   aggressor edge injects `i ≈ Cc·slew` into the victim, which a sink
//!   sees through the shared path resistance. The slew is the *maximum*
//!   step-response slope of the aggressor's own EED model at its coupling
//!   node (the peak of the second-order impulse response, closed-form in
//!   `ζ` and `ω_n`), which stays honest for underdamped RLC edges where
//!   the RC-style `0.8/t_rise` average is low by ~2×. Summed over every
//!   coupling of the victim:
//!
//!   ```text
//!   V_peak(sink)/Vdd ≈ Σ_couplings Cc · R_common(sink, attach) · slew_max(agg)
//!   ```
//!
//! Every net of a [`CoupledGroup`] is analyzed as a victim (its neighbours
//! as aggressors), and the result renders as a deterministic, single-line
//! `rlc-couple/1` JSON object — the coupled analogue of `rlc-engine/1`'s
//! per-net entries. The estimates are differenced against the exact coupled
//! simulator (`rlc_sim::simulate_coupled`) in `rlc-verify`.
//!
//! # Examples
//!
//! ```
//! use rlc_tree::coupled::CoupledGroup;
//! use rlc_couple::analyze_group;
//!
//! let deck = "\
//! .net victim
//! R1 in n1 25
//! L1 n1 n2 2n
//! C1 n2 0 0.5p
//! .net agg
//! R1 in m1 40
//! L1 m1 m2 1n
//! C1 m2 0 0.3p
//! K1 victim.n2 agg.m2 0.1p
//! ";
//! let group = CoupledGroup::parse(deck)?;
//! let timing = analyze_group(&group, "pair");
//! let victim = &timing.victims[0];
//! let sink = &victim.sinks[0];
//! // Opposite-phase switching slows the victim; in-phase speeds it up.
//! assert!(sink.worst_delay > sink.delay_50);
//! assert!(sink.best_delay < sink.delay_50);
//! assert!(sink.noise_peak > 0.0);
//! assert!(timing.to_json().starts_with("{\"schema\": \"rlc-couple/1\""));
//! # Ok::<(), rlc_tree::TreeError>(())
//! ```

use eed::{Damping, SecondOrderModel};
use rlc_moments::{forest_sums_into, ElmoreSums};
use rlc_tree::coupled::CoupledGroup;
use rlc_tree::{FlatForest, NodeId, RlcSection, RlcTree};
use rlc_units::{Capacitance, Time};

/// Miller factor for a quiet aggressor: the coupling capacitor appears at
/// its face value.
pub const MILLER_NOMINAL: f64 = 1.0;
/// Miller factor for an aggressor switching opposite to the victim: the
/// effective coupling doubles (worst-case delay).
pub const MILLER_WORST: f64 = 2.0;
/// Miller factor for an aggressor switching with the victim: the coupling
/// vanishes (best-case delay).
pub const MILLER_BEST: f64 = 0.0;

/// Maximum slope of the unit step response of a second-order model — the
/// peak of its impulse response, in 1/s per unit swing. Closed form in
/// `(ζ, ω_n)` for every damping regime:
///
/// ```text
/// ζ < 1:  ω_n · exp(−ζ·θ/√(1−ζ²)),  θ = atan2(√(1−ζ²), ζ)
/// ζ = 1:  ω_n / e
/// ζ > 1:  ω_n/(2√(ζ²−1)) · ((a/b)^{a/(b−a)} − (a/b)^{b/(b−a)}),
///         a = ζ−√(ζ²−1), b = ζ+√(ζ²−1)
/// ```
///
/// This is the aggressor-edge slew used by the noise bound; unlike the
/// RC-style `0.8/t_rise`, it stays honest for underdamped RLC edges, whose
/// peak slope is up to `ω_n` — roughly twice the average 10–90% slew.
fn max_step_slew(model: &eed::SecondOrderModel) -> f64 {
    let zeta = model.zeta();
    let omega_n = model.omega_n().as_radians_per_second();
    if !(zeta.is_finite() && omega_n.is_finite() && omega_n > 0.0 && zeta > 0.0) {
        return f64::NAN;
    }
    if zeta < 1.0 {
        let root = (1.0 - zeta * zeta).sqrt();
        omega_n * (-zeta * root.atan2(zeta) / root).exp()
    } else if zeta == 1.0 {
        omega_n * (-1.0f64).exp()
    } else {
        let root = (zeta * zeta - 1.0).sqrt();
        let a = zeta - root;
        let b = zeta + root;
        let ratio = a / b;
        omega_n / (2.0 * root) * (ratio.powf(a / (b - a)) - ratio.powf(b / (b - a)))
    }
}

/// Crosstalk timing for one victim sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledSinkTiming {
    /// The sink node (a leaf of the victim tree).
    pub node: NodeId,
    /// Nominal 50% delay (quiet aggressors, Miller factor 1).
    pub delay_50: Time,
    /// Worst-case 50% delay (all aggressors opposite, Miller factor 2).
    pub worst_delay: Time,
    /// Best-case 50% delay (all aggressors aligned, Miller factor 0).
    pub best_delay: Time,
    /// Nominal 10–90% rise time.
    pub rise_time: Time,
    /// Nominal damping factor ζ at the sink.
    pub zeta: f64,
    /// Nominal damping classification.
    pub damping: Damping,
    /// Devgan-style noise-peak bound at this sink for a quiet victim, as a
    /// fraction of the supply (0 when the victim has no couplings or every
    /// aggressor edge is unbounded).
    pub noise_peak: f64,
}

impl CoupledSinkTiming {
    /// Worst-case delay change `worst − nominal` (≥ 0: a slowdown).
    pub fn delay_change_worst(&self) -> Time {
        self.worst_delay - self.delay_50
    }

    /// Best-case delay change `best − nominal` (≤ 0: a speedup).
    pub fn delay_change_best(&self) -> Time {
        self.best_delay - self.delay_50
    }
}

/// Crosstalk analysis of one net in its role as victim.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimTiming {
    /// The net's name from its `.net` card.
    pub name: String,
    /// Section count of the victim tree.
    pub sections: usize,
    /// Names of the nets coupled to this one, in group order.
    pub aggressors: Vec<String>,
    /// Per-sink crosstalk timing, in arena order.
    pub sinks: Vec<CoupledSinkTiming>,
}

/// Crosstalk analysis of a whole coupled group: every net as victim.
///
/// Produced by [`analyze_group`]; renders as the single-line
/// `rlc-couple/1` JSON object via [`GroupTiming::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTiming {
    /// The group's job name (assigned by the caller, like a net name in
    /// `rlc-engine/1`; result caches re-render hits under it).
    pub name: String,
    /// Number of coupling capacitors in the group.
    pub couplings: usize,
    /// Per-net victim analyses, in declaration order.
    pub victims: Vec<VictimTiming>,
}

impl GroupTiming {
    /// The victim sink with the largest worst-case delay, if any.
    pub fn critical(&self) -> Option<(&VictimTiming, &CoupledSinkTiming)> {
        self.victims
            .iter()
            .flat_map(|v| v.sinks.iter().map(move |s| (v, s)))
            .max_by(|a, b| {
                a.1.worst_delay
                    .partial_cmp(&b.1.worst_delay)
                    .unwrap_or(core::cmp::Ordering::Equal)
            })
    }

    /// Renders the deterministic single-line `rlc-couple/1` JSON object.
    ///
    /// Shape (one line; split here for readability):
    ///
    /// ```text
    /// {"schema": "rlc-couple/1", "name": …, "status": "ok",
    ///  "nets": N, "couplings": K,
    ///  "critical_victim": …|null, "critical_worst_delay_ps": …,
    ///  "victims": [
    ///    {"name": …, "sections": S, "aggressors": […],
    ///     "sinks": [{"node": i, "delay_50_ps": …, "worst_delay_ps": …,
    ///                "best_delay_ps": …, "delay_change_worst_ps": …,
    ///                "delay_change_best_ps": …, "rise_time_ps": …,
    ///                "zeta": …|null, "damping": …, "noise_peak": …}, …]}, …]}
    /// ```
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;
        use rlc_obs::json::{number, quote};

        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\": \"rlc-couple/1\", \"name\": {}, \"status\": \"ok\", \
             \"nets\": {}, \"couplings\": {}, ",
            quote(&self.name),
            self.victims.len(),
            self.couplings
        );
        match self.critical() {
            Some((victim, sink)) => {
                let _ = write!(
                    out,
                    "\"critical_victim\": {}, \"critical_worst_delay_ps\": {}, ",
                    quote(&victim.name),
                    number(sink.worst_delay.as_picoseconds())
                );
            }
            None => out.push_str("\"critical_victim\": null, "),
        }
        out.push_str("\"victims\": [");
        for (i, victim) in self.victims.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"name\": {}, \"sections\": {}, \"aggressors\": [",
                quote(&victim.name),
                victim.sections
            );
            for (j, aggressor) in victim.aggressors.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{}", quote(aggressor));
            }
            out.push_str("], \"sinks\": [");
            for (j, sink) in victim.sinks.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let zeta = if sink.zeta.is_finite() {
                    number(sink.zeta)
                } else {
                    "null".to_owned()
                };
                let _ = write!(
                    out,
                    "{sep}{{\"node\": {}, \"delay_50_ps\": {}, \"worst_delay_ps\": {}, \
                     \"best_delay_ps\": {}, \"delay_change_worst_ps\": {}, \
                     \"delay_change_best_ps\": {}, \"rise_time_ps\": {}, \"zeta\": {}, \
                     \"damping\": {}, \"noise_peak\": {}}}",
                    sink.node.index(),
                    number(sink.delay_50.as_picoseconds()),
                    number(sink.worst_delay.as_picoseconds()),
                    number(sink.best_delay.as_picoseconds()),
                    number(sink.delay_change_worst().as_picoseconds()),
                    number(sink.delay_change_best().as_picoseconds()),
                    number(sink.rise_time.as_picoseconds()),
                    zeta,
                    quote(&sink.damping.to_string()),
                    number(sink.noise_peak),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Folds every coupling of net `victim` onto its attach nodes as grounded
/// capacitors scaled by the Miller `factor`, returning the decoupled tree.
///
/// This is the specification of the folding; [`analyze_group`] performs the
/// same capacitance bumps in-place on a packed [`FlatForest`] instead of
/// cloning trees, with identical arithmetic (same additions, same
/// [`couplings_of`](CoupledGroup::couplings_of) order).
pub fn miller_folded_tree(group: &CoupledGroup, victim: usize, factor: f64) -> RlcTree {
    let mut tree = group.nets()[victim].tree().clone();
    if factor != 0.0 {
        for (this_end, _, cc) in group.couplings_of(victim) {
            let section = tree.section_mut(this_end.node);
            *section = RlcSection::new(
                section.resistance(),
                section.inductance(),
                section.capacitance() + Capacitance::from_farads(factor * cc.as_farads()),
            );
        }
    }
    tree
}

/// Reusable buffers for [`analyze_group_with`]: the packed forest holding
/// every Miller-folded tree variant of a group, plus the moment sums over
/// it. Contents are rebuilt from scratch on every call, so one scratch can
/// serve any sequence of groups (an engine worker keeps one per thread).
#[derive(Debug, Clone, Default)]
pub struct CoupleScratch {
    forest: FlatForest,
    sums: ElmoreSums,
}

/// Pushes net `victim`'s tree into `forest` and Miller-folds its couplings
/// in place, returning the variant's net index within the forest.
///
/// Same arithmetic and coupling order as [`miller_folded_tree`], applied to
/// the packed capacitance array instead of a cloned arena.
fn push_folded(forest: &mut FlatForest, group: &CoupledGroup, victim: usize, factor: f64) -> usize {
    let net = forest.push_tree(group.nets()[victim].tree());
    if factor != 0.0 {
        let base = forest.net_range(net).start;
        for (this_end, _, cc) in group.couplings_of(victim) {
            forest.bump_cap(
                base + this_end.node.index(),
                Capacitance::from_farads(factor * cc.as_farads()),
            );
        }
    }
    net
}

/// The second-order model at packed index `i`, or `None` for nodes with no
/// dynamics — the packed equivalent of `TreeAnalysis::try_model`.
fn model_at(sums: &ElmoreSums, i: usize) -> Option<SecondOrderModel> {
    let rc = sums.rc_at(i);
    let lc = sums.lc_at(i);
    if rc.as_seconds() == 0.0 && lc.as_seconds_squared() == 0.0 {
        None
    } else {
        Some(SecondOrderModel::from_sums(rc, lc))
    }
}

/// Analyzes every net of `group` as a victim of its neighbours.
///
/// Allocates a fresh [`CoupleScratch`] per call; batch callers should hold
/// one scratch and use [`analyze_group_with`] instead.
pub fn analyze_group(group: &CoupledGroup, name: &str) -> GroupTiming {
    analyze_group_with(group, name, &mut CoupleScratch::default())
}

/// [`analyze_group`] over caller-provided scratch buffers.
///
/// Packs all `3n` Miller-folded tree variants (nominal, worst, best per
/// net) into one [`FlatForest`] and computes every `T_RC`/`T_LC` sum with a
/// single two-pass sweep over the packed arena, then reads the per-scenario
/// second-order models back out of the shared sum buffers. Bit-identical to
/// analyzing each [`miller_folded_tree`] clone separately, without the
/// per-scenario tree clones and moment allocations.
pub fn analyze_group_with(
    group: &CoupledGroup,
    name: &str,
    scratch: &mut CoupleScratch,
) -> GroupTiming {
    let _span = rlc_obs::span!("couple.analyze_group");
    rlc_obs::counter!("couple.analyze_group.calls");
    let nets = group.nets();
    let n = nets.len();

    // Forest layout: nets 0..n are the nominal (quiet-neighbour) foldings —
    // they double as the aggressor-edge models for the noise bounds — and
    // victim v's worst/best variants sit at net indices n + 2v and
    // n + 2v + 1.
    let forest = &mut scratch.forest;
    forest.clear();
    for v in 0..n {
        push_folded(forest, group, v, MILLER_NOMINAL);
    }
    for v in 0..n {
        push_folded(forest, group, v, MILLER_WORST);
        push_folded(forest, group, v, MILLER_BEST);
    }
    forest_sums_into(forest, &mut scratch.sums);
    let (forest, sums) = (&scratch.forest, &scratch.sums);

    let mut victims = Vec::with_capacity(n);
    for (v, net) in nets.iter().enumerate() {
        let nominal_base = forest.net_range(v).start;
        let worst_base = forest.net_range(n + 2 * v).start;
        let best_base = forest.net_range(n + 2 * v + 1).start;

        let mut aggressors: Vec<String> = Vec::new();
        for (_, far, _) in group.couplings_of(v) {
            let far_name = nets[far.net].name();
            if !aggressors.iter().any(|n| n == far_name) {
                aggressors.push(far_name.to_owned());
            }
        }

        let tree = net.tree();
        let mut sinks = Vec::new();
        for sink in tree.leaves() {
            let Some(model) = model_at(sums, nominal_base + sink.index()) else {
                continue;
            };
            let delay_50 = model.delay_50();
            let worst_delay =
                model_at(sums, worst_base + sink.index()).map_or(delay_50, |m| m.delay_50());
            let best_delay =
                model_at(sums, best_base + sink.index()).map_or(delay_50, |m| m.delay_50());

            // Devgan-style bound, extended for RLC: every coupling injects
            // `i ≈ Cc·dv_agg/dt` through the shared path impedance. The
            // resistive term is the classic RC bound; the inductive term
            // `L_common·di/dt ≈ L_common·Cc·d²v_agg/dt²` (peak second
            // derivative of a second-order step response ≈ ω_n²) restores
            // the voltage the RC formula drops across the shared
            // inductance — without it the bound fails on RLC victims even
            // at critical damping. Aggressor edges without a finite
            // positive peak slew (no dynamics at the coupling node) are
            // skipped.
            let mut noise = 0.0;
            for (this_end, far, cc) in group.couplings_of(v) {
                let far_base = forest.net_range(far.net).start;
                let Some(agg) = model_at(sums, far_base + far.node.index()) else {
                    continue;
                };
                let slew = max_step_slew(&agg);
                if !slew.is_finite() || slew <= 0.0 {
                    continue;
                }
                let omega_n = agg.omega_n().as_radians_per_second();
                let r_common = tree.common_path_resistance(sink, this_end.node);
                let l_common = tree.common_path_inductance(sink, this_end.node);
                noise += cc.as_farads()
                    * (r_common.as_ohms() * slew + l_common.as_henries() * omega_n * omega_n);
            }

            sinks.push(CoupledSinkTiming {
                node: sink,
                delay_50,
                worst_delay,
                best_delay,
                rise_time: model.rise_time(),
                zeta: model.zeta(),
                damping: model.damping(),
                noise_peak: noise,
            });
        }
        victims.push(VictimTiming {
            name: net.name().to_owned(),
            sections: tree.len(),
            aggressors,
            sinks,
        });
    }
    GroupTiming {
        name: name.to_owned(),
        couplings: group.couplings().len(),
        victims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eed::TreeAnalysis;
    use rlc_sim::{simulate, simulate_coupled, SimOptions, Source};
    use rlc_units::Time;

    const PAIR: &str = "\
.net v
R1 in n1 25
L1 n1 n2 2n
C1 n2 0 0.5p
R2 n2 n3 25
L2 n3 n4 2n
C2 n4 0 0.5p
.net a
R1 in m1 25
L1 m1 m2 2n
C1 m2 0 0.5p
R2 m2 m3 25
L2 m3 m4 2n
C2 m4 0 0.5p
K1 v.n4 a.m4 0.2p
.end
";

    fn group() -> CoupledGroup {
        CoupledGroup::parse(PAIR).expect("test deck parses")
    }

    #[test]
    fn delay_window_orders_best_nominal_worst() {
        let timing = analyze_group(&group(), "pair");
        assert_eq!(timing.victims.len(), 2);
        assert_eq!(timing.couplings, 1);
        for victim in &timing.victims {
            assert_eq!(victim.aggressors.len(), 1);
            for sink in &victim.sinks {
                assert!(sink.best_delay < sink.delay_50, "{victim:?}");
                assert!(sink.delay_50 < sink.worst_delay, "{victim:?}");
                assert!(sink.delay_change_worst() > Time::ZERO);
                assert!(sink.delay_change_best() < Time::ZERO);
                assert!(sink.noise_peak > 0.0);
            }
        }
    }

    #[test]
    fn symmetric_pair_is_symmetric() {
        let timing = analyze_group(&group(), "pair");
        let a = &timing.victims[0].sinks[0];
        let b = &timing.victims[1].sinks[0];
        assert_eq!(a.delay_50, b.delay_50);
        assert_eq!(a.worst_delay, b.worst_delay);
        assert_eq!(a.noise_peak, b.noise_peak);
    }

    #[test]
    fn worst_case_delay_matches_exact_simulation_within_the_envelope() {
        // The acceptance gate in miniature: Miller-2 EED vs the exact
        // coupled simulator with an opposite-switching aggressor.
        let group = group();
        let timing = analyze_group(&group, "pair");
        let sink = &timing.victims[0].sinks[0];
        let opts = SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(8.0));
        let wave = &simulate_coupled(
            &group,
            &[Source::step(1.0), Source::step(-1.0)],
            &opts,
            &[(0, sink.node)],
        )[0];
        let exact = wave.delay_50(1.0).expect("victim settles").as_picoseconds();
        let predicted = sink.worst_delay.as_picoseconds();
        let error = (predicted - exact).abs() / exact;
        assert!(
            error < 0.25,
            "worst-case delay error {error:.3} (predicted {predicted:.1} ps, exact {exact:.1} ps)"
        );
    }

    #[test]
    fn noise_bound_dominates_the_simulated_peak() {
        // Devgan-style bounds overestimate; the simulated quiet-victim peak
        // must not exceed the estimate by more than measurement slack.
        let group = group();
        let timing = analyze_group(&group, "pair");
        let sink = &timing.victims[0].sinks[0];
        let opts = SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(8.0));
        let wave = &simulate_coupled(
            &group,
            &[Source::step(0.0), Source::step(1.0)],
            &opts,
            &[(0, sink.node)],
        )[0];
        let (_, simulated) = wave.peak();
        assert!(simulated > 0.0);
        assert!(
            sink.noise_peak > 0.5 * simulated,
            "estimate {} vs simulated {simulated}",
            sink.noise_peak
        );
    }

    #[test]
    fn miller_folding_matches_manual_construction() {
        let group = group();
        let folded = miller_folded_tree(&group, 0, MILLER_WORST);
        let attach = group.couplings()[0].a.node;
        let base = group.nets()[0].tree();
        let expected = base.section(attach).capacitance().as_farads()
            + 2.0 * group.couplings()[0].capacitance.as_farads();
        assert!((folded.section(attach).capacitance().as_farads() - expected).abs() < 1e-24);
        // Every other node untouched; factor 0 is the identity.
        assert_eq!(miller_folded_tree(&group, 0, MILLER_BEST), *base);
    }

    #[test]
    fn nominal_folding_equals_grounded_coupling_caps() {
        // Miller factor 1 must reproduce a plain single-net analysis of the
        // tree with the coupling cap grounded.
        let group = group();
        let folded = miller_folded_tree(&group, 0, MILLER_NOMINAL);
        let analysis = TreeAnalysis::new(&folded);
        let timing = analyze_group(&group, "pair");
        let sink = &timing.victims[0].sinks[0];
        assert_eq!(analysis.delay_50(sink.node), sink.delay_50);
        // And the folded tree sim agrees with what the model approximates.
        let opts = SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(8.0));
        let wave = &simulate(&folded, &Source::step(1.0), &opts, &[sink.node])[0];
        let exact = wave.delay_50(1.0).expect("settles").as_picoseconds();
        let err = (sink.delay_50.as_picoseconds() - exact).abs() / exact;
        assert!(err < 0.25, "nominal EED error {err:.3}");
    }

    #[test]
    fn packed_forest_matches_per_clone_analyses_bitwise() {
        // The packed-arena kernel must reproduce the per-clone TreeAnalysis
        // construction exactly — not approximately — for every scenario.
        let group = group();
        let timing = analyze_group(&group, "pair");
        for (v, victim) in timing.victims.iter().enumerate() {
            let nominal = TreeAnalysis::new(&miller_folded_tree(&group, v, MILLER_NOMINAL));
            let worst = TreeAnalysis::new(&miller_folded_tree(&group, v, MILLER_WORST));
            let best = TreeAnalysis::new(&miller_folded_tree(&group, v, MILLER_BEST));
            assert!(!victim.sinks.is_empty());
            for sink in &victim.sinks {
                assert_eq!(sink.delay_50, nominal.delay_50(sink.node));
                assert_eq!(sink.worst_delay, worst.delay_50(sink.node));
                assert_eq!(sink.best_delay, best.delay_50(sink.node));
                assert_eq!(sink.rise_time, nominal.rise_time(sink.node));
                assert_eq!(sink.zeta, nominal.model(sink.node).zeta());
            }
        }
        // Scratch reuse across different groups changes nothing.
        let mut scratch = CoupleScratch::default();
        let solo = CoupledGroup::parse(".net s\nR1 in n1 25\nC1 n1 0 0.5p\n").expect("parses");
        let _ = analyze_group_with(&solo, "warmup", &mut scratch);
        assert_eq!(analyze_group_with(&group, "pair", &mut scratch), timing);
    }

    #[test]
    fn json_is_deterministic_and_tagged() {
        let timing = analyze_group(&group(), "pair");
        let json = timing.to_json();
        assert_eq!(json, analyze_group(&group(), "pair").to_json());
        assert!(json.starts_with("{\"schema\": \"rlc-couple/1\", \"name\": \"pair\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"critical_victim\": "));
        assert!(json.contains("\"delay_change_worst_ps\": "));
        assert!(json.contains("\"noise_peak\": "));
        assert!(!json.contains('\n'));
        // Victims render in declaration order with their aggressor lists.
        let v_pos = json.find("\"name\": \"v\"").expect("victim v");
        let a_pos = json.find("\"name\": \"a\"").expect("victim a");
        assert!(v_pos < a_pos);
    }

    #[test]
    fn uncoupled_group_has_zero_window_and_noise() {
        let deck = ".net solo\nR1 in n1 25\nL1 n1 n2 2n\nC1 n2 0 0.5p\n";
        let group = CoupledGroup::parse(deck).expect("parses");
        let timing = analyze_group(&group, "solo");
        let sink = &timing.victims[0].sinks[0];
        assert_eq!(sink.worst_delay, sink.delay_50);
        assert_eq!(sink.best_delay, sink.delay_50);
        assert_eq!(sink.noise_peak, 0.0);
        assert!(timing.victims[0].aggressors.is_empty());
    }
}
