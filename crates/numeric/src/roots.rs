//! Scalar root finding: bisection, Brent's method, safeguarded Newton, and
//! bracket expansion.
//!
//! These are used to invert the closed-form second-order step response for
//! *exact* 50% delay and 10–90% rise-time computation (against which the
//! paper's fitted formulas, eqs. (33)–(34), are validated).

use crate::NumericError;

/// Finds a root of `f` on `[a, b]` by bisection.
///
/// Robust but linear-rate; prefer [`brent`] unless you need the absolute
/// predictability of bisection.
///
/// # Errors
///
/// Returns [`NumericError::NoSignChange`] if `f(a)` and `f(b)` have the same
/// sign, and [`NumericError::NoConvergence`] if the interval does not shrink
/// below `tol` within `max_iter` iterations.
///
/// # Examples
///
/// ```
/// use rlc_numeric::roots::bisect;
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::NoSignChange { a, b });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericError::NoConvergence {
        iterations: max_iter,
    })
}

/// Finds a root of `f` on `[a, b]` using Brent's method
/// (inverse-quadratic/secant steps with a bisection safeguard).
///
/// # Errors
///
/// Returns [`NumericError::NoSignChange`] if `f(a)` and `f(b)` have the same
/// sign, and [`NumericError::NoConvergence`] if `max_iter` is exhausted.
///
/// # Examples
///
/// ```
/// use rlc_numeric::roots::brent;
/// let root = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100)?;
/// assert!((root.cos() - root).abs() < 1e-12);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::NoSignChange { a, b });
    }
    rlc_obs::counter!("numeric.brent.calls");
    if fa.abs() < fb.abs() {
        core::mem::swap(&mut a, &mut b);
        core::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for iter in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            rlc_obs::counter!("numeric.brent.iterations", iter as u64);
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
        let cond_bad_range = s <= lo || s >= hi;
        let cond_small_step = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let cond_tiny_interval = if mflag {
            (b - c).abs() < tol
        } else {
            (c - d).abs() < tol
        };
        if cond_bad_range || cond_small_step || cond_tiny_interval {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            core::mem::swap(&mut a, &mut b);
            core::mem::swap(&mut fa, &mut fb);
        }
    }
    rlc_obs::counter!("numeric.brent.iterations", max_iter as u64);
    Err(NumericError::NoConvergence {
        iterations: max_iter,
    })
}

/// Newton's method safeguarded by a bracketing interval.
///
/// Takes Newton steps from `x0` using the derivative supplied by `df`, but
/// falls back to bisection on `[a, b]` whenever a step leaves the bracket or
/// the derivative is too small. The bracket is maintained using the sign of
/// `f`, so the method is globally convergent on a sign-changing bracket while
/// retaining Newton's quadratic local rate.
///
/// # Errors
///
/// Returns [`NumericError::NoSignChange`] if `[a, b]` does not bracket a
/// root, and [`NumericError::NoConvergence`] if `max_iter` is exhausted.
///
/// # Examples
///
/// ```
/// use rlc_numeric::roots::newton_bracketed;
/// // Solve x³ = 5 starting from a poor guess.
/// let root = newton_bracketed(|x| x * x * x - 5.0, |x| 3.0 * x * x, 0.1, 0.0, 5.0, 1e-14, 100)?;
/// assert!((root - 5f64.cbrt()).abs() < 1e-12);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn newton_bracketed<F, D>(
    mut f: F,
    mut df: D,
    x0: f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    let (mut lo, mut hi) = (a, b);
    let flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericError::NoSignChange { a, b });
    }
    rlc_obs::counter!("numeric.newton.calls");
    let mut x = x0.clamp(lo.min(hi), lo.max(hi));
    for iter in 0..max_iter {
        let fx = f(x);
        if fx == 0.0 {
            rlc_obs::counter!("numeric.newton.iterations", iter as u64);
            return Ok(x);
        }
        // Maintain the bracket.
        if fx.signum() == flo.signum() {
            lo = x;
        } else {
            hi = x;
        }
        if (hi - lo).abs() < tol {
            rlc_obs::counter!("numeric.newton.iterations", iter as u64);
            return Ok(0.5 * (lo + hi));
        }
        let dfx = df(x);
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let (bmin, bmax) = (lo.min(hi), lo.max(hi));
        x = if newton.is_finite() && newton > bmin && newton < bmax {
            newton
        } else {
            0.5 * (lo + hi)
        };
    }
    rlc_obs::counter!("numeric.newton.iterations", max_iter as u64);
    Err(NumericError::NoConvergence {
        iterations: max_iter,
    })
}

/// Expands `[a, b]` geometrically to the right until `f` changes sign.
///
/// Useful when only a lower bound on the root is known (e.g. searching for
/// the first time a rising waveform crosses a threshold). Returns the
/// bracketing interval.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if no sign change is found within
/// `max_doublings` interval doublings.
///
/// # Examples
///
/// ```
/// use rlc_numeric::roots::{expand_bracket_right, brent};
/// let f = |t: f64| 1.0 - (-0.1 * t).exp() - 0.9; // crosses zero near t ≈ 23
/// let (a, b) = expand_bracket_right(f, 0.0, 1.0, 60)?;
/// let root = brent(f, a, b, 1e-12, 200)?;
/// assert!((root - 23.025850929940457).abs() < 1e-6);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
pub fn expand_bracket_right<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    initial_width: f64,
    max_doublings: usize,
) -> Result<(f64, f64), NumericError> {
    let fa = f(a);
    if fa == 0.0 {
        return Ok((a, a));
    }
    let mut width = initial_width;
    let mut lo = a;
    let mut flo = fa;
    for _ in 0..max_doublings {
        let hi = lo + width;
        let fhi = f(hi);
        if fhi == 0.0 || fhi.signum() != flo.signum() {
            return Ok((lo, hi));
        }
        lo = hi;
        flo = fhi;
        width *= 2.0;
    }
    Err(NumericError::NoConvergence {
        iterations: max_doublings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_same_sign() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumericError::NoSignChange { .. }));
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.exp() - 3.0, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((r - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn brent_handles_flat_regions() {
        // A function that is nearly flat near the left endpoint.
        let f = |x: f64| (x - 1.0).powi(3);
        let r = brent(f, -5.0, 4.0, 1e-13, 200).unwrap();
        assert!((r - 1.0).abs() < 1e-4);
    }

    #[test]
    fn brent_rejects_same_sign() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(NumericError::NoSignChange { .. })
        ));
    }

    #[test]
    fn newton_quadratic_convergence() {
        let mut evals = 0usize;
        let r = newton_bracketed(
            |x| {
                evals += 1;
                x * x - 2.0
            },
            |x| 2.0 * x,
            1.0,
            0.0,
            2.0,
            1e-14,
            100,
        )
        .unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(
            evals < 12,
            "expected Newton-rate convergence, used {evals} evals"
        );
    }

    #[test]
    fn newton_survives_zero_derivative() {
        // df is zero at the starting point; must fall back to bisection.
        let r = newton_bracketed(
            |x| x * x * x - 1.0,
            |x| 3.0 * x * x,
            0.0,
            -1.0,
            2.0,
            1e-13,
            200,
        )
        .unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn newton_rejects_bad_bracket() {
        assert!(matches!(
            newton_bracketed(|x| x * x + 1.0, |x| 2.0 * x, 0.0, -1.0, 1.0, 1e-12, 50),
            Err(NumericError::NoSignChange { .. })
        ));
    }

    #[test]
    fn expand_bracket_finds_crossing() {
        let (a, b) = expand_bracket_right(|t| t - 100.0, 0.0, 1.0, 64).unwrap();
        assert!(a <= 100.0 && 100.0 <= b);
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(matches!(
            expand_bracket_right(|_| 1.0, 0.0, 1.0, 8),
            Err(NumericError::NoConvergence { .. })
        ));
    }

    #[test]
    fn expand_then_brent_composes() {
        let f = |t: f64| 1.0 - (-t).exp() - 0.5;
        let (a, b) = expand_bracket_right(f, 0.0, 0.05, 64).unwrap();
        let r = brent(f, a, b, 1e-13, 100).unwrap();
        assert!((r - std::f64::consts::LN_2).abs() < 1e-10);
    }
}
