//! Scalar minimization primitives shared by the optimization loops.
//!
//! The higher crates (`rlc-opt`, `rlc-synth`) drive every sizing search
//! through this one kernel so that a width found by repeater sizing, wire
//! sizing, or the synthesis DP's joint sizing pass comes from *identical*
//! bracketing arithmetic — a prerequisite for byte-stable reports.

/// Golden-section minimization over `[lo, hi]`, returning `(argmin, min)`.
///
/// 80 iterations shrink the bracket by φ⁸⁰ ≈ 10⁻¹⁷ — far below the
/// resolution any physical width or size bound needs — and the objective
/// is evaluated one extra time at the final bracket midpoint so the
/// returned minimum is exactly `f(argmin)`. The search assumes `f` is
/// unimodal on the bracket; on a non-unimodal objective it still returns
/// a local minimum.
///
/// This is the search used by every golden-section loop in the workspace:
/// `rlc-opt`'s repeater sizing, continuous wire sizing, and buffer sizing
/// (re-exported there as `rlc_opt::search::golden_min`), and the
/// `rlc-synth` wire width pass.
///
/// # Examples
///
/// ```
/// use rlc_numeric::minimize::golden_min;
///
/// let (x, fx) = golden_min(0.0, 4.0, |x| (x - 1.5) * (x - 1.5));
/// assert!((x - 1.5).abs() < 1e-9);
/// assert!(fx < 1e-18);
/// ```
pub fn golden_min(mut lo: f64, mut hi: f64, mut f: impl FnMut(f64) -> f64) -> (f64, f64) {
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = hi - phi * (hi - lo);
    let mut d = lo + phi * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..80 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - phi * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + phi * (hi - lo);
            fd = f(d);
        }
    }
    let x = 0.5 * (lo + hi);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        // The bracket stalls near √ε on a perfectly symmetric objective
        // (the two probe values become float-equal), so the attainable
        // argmin accuracy is ~1e-8, not the φ⁸⁰ bracket width.
        let (x, fx) = golden_min(-10.0, 10.0, |x| x * x + 3.0);
        assert!(x.abs() < 1e-6);
        assert!((fx - 3.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_minimum_converges_to_the_edge() {
        let (x, _) = golden_min(2.0, 9.0, |x| x);
        assert!((x - 2.0).abs() < 1e-9, "monotone objective pins lo: {x}");
    }

    #[test]
    fn accepts_stateful_objectives() {
        let mut evals = 0usize;
        let (x, _) = golden_min(0.0, 1.0, |x| {
            evals += 1;
            (x - 0.25).abs()
        });
        assert!((x - 0.25).abs() < 1e-9);
        // Two seed evaluations, one per iteration, one final midpoint.
        assert_eq!(evals, 83);
    }
}
