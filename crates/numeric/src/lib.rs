//! Numerical kernels for the Equivalent Elmore Delay workspace.
//!
//! The algorithms in the paper and its comparators need a small, well-tested
//! set of numerical tools rather than a general linear-algebra stack:
//!
//! * [`Complex64`] — complex arithmetic for pole/residue manipulation
//!   (`mod complex`);
//! * [`Polynomial`] — dense real-coefficient polynomials with
//!   Aberth–Ehrlich root finding (`mod poly`), used to extract Padé poles in
//!   asymptotic waveform evaluation;
//! * scalar root finding — bisection, Brent's method and a safeguarded
//!   Newton (`mod roots`), used to invert closed-form step responses for the
//!   exact 50% delay and rise time;
//! * dense linear algebra — partial-pivoting LU solve and Householder-QR
//!   least squares (`mod linalg`), used by moment matching and by the
//!   curve-refit of the paper's eqs. (33)–(34).
//!
//! # Examples
//!
//! Find where a damped cosine first crosses 0.5:
//!
//! ```
//! use rlc_numeric::roots::brent;
//!
//! let f = |t: f64| 1.0 - (-t).exp() * (2.0 * t).cos() - 0.5;
//! let root = brent(f, 0.0, 2.0, 1e-12, 200)?;
//! assert!((f(root)).abs() < 1e-10);
//! # Ok::<(), rlc_numeric::NumericError>(())
//! ```

mod complex;
mod error;
pub mod linalg;
pub mod minimize;
pub mod poly;
pub mod roots;

pub use complex::Complex64;
pub use error::NumericError;
pub use poly::Polynomial;
