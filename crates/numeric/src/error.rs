//! Error type shared by the numerical kernels.

use core::fmt;

/// Error returned by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A bracketing root finder was given an interval `[a, b]` on which the
    /// function does not change sign.
    NoSignChange {
        /// Left endpoint of the supplied interval.
        a: f64,
        /// Right endpoint of the supplied interval.
        b: f64,
    },
    /// An iterative method did not converge within its iteration budget.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// A linear system was singular (or numerically singular) at the given
    /// pivot index.
    SingularMatrix {
        /// Pivot/column index where elimination broke down.
        pivot: usize,
    },
    /// The caller supplied dimensions that do not describe a valid problem
    /// (e.g. a non-square matrix for LU, or mismatched lengths).
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The problem is degenerate (e.g. fitting zero data points, or finding
    /// roots of the zero polynomial).
    Degenerate {
        /// Human-readable description of the degeneracy.
        context: &'static str,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::NoSignChange { a, b } => {
                write!(f, "no sign change on interval [{a}, {b}]")
            }
            NumericError::NoConvergence { iterations } => {
                write!(f, "no convergence within {iterations} iterations")
            }
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            NumericError::Degenerate { context } => {
                write!(f, "degenerate problem: {context}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NumericError::NoSignChange { a: 0.0, b: 1.0 }.to_string(),
            "no sign change on interval [0, 1]"
        );
        assert_eq!(
            NumericError::NoConvergence { iterations: 7 }.to_string(),
            "no convergence within 7 iterations"
        );
        assert_eq!(
            NumericError::SingularMatrix { pivot: 3 }.to_string(),
            "matrix is singular at pivot 3"
        );
        assert!(NumericError::DimensionMismatch { context: "x" }
            .to_string()
            .contains("x"));
        assert!(NumericError::Degenerate { context: "y" }
            .to_string()
            .contains("y"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NumericError>();
    }
}
