//! A minimal double-precision complex number.
//!
//! The workspace needs complex arithmetic only for pole/residue algebra in
//! reduced-order models, so a small hand-rolled type is preferable to an
//! external dependency.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use rlc_numeric::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (cheaper than [`norm`](Self::norm)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_numeric::Complex64;
    /// use std::f64::consts::PI;
    ///
    /// // Euler: e^{iπ} = −1
    /// let z = (Complex64::I * PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let r = self.norm();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt().copysign(self.im);
        Self::new(re, im)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Self::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).norm() <= tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert!(close(a / b * b, a, 1e-15));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn scalar_ops() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a * 2.0, Complex64::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Complex64::new(0.5, 1.0));
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj().im, -4.0);
        assert!(close(z * z.conj(), Complex64::from_real(25.0), 1e-12));
    }

    #[test]
    fn recip_inverts() {
        let z = Complex64::new(-2.0, 7.0);
        assert!(close(z * z.recip(), Complex64::ONE, 1e-15));
    }

    #[test]
    fn exp_euler_identity() {
        let z = (Complex64::I * PI).exp();
        assert!(close(z, Complex64::from_real(-1.0), 1e-14));
        // exp of real argument matches f64::exp
        let r = Complex64::from_real(1.5).exp();
        assert!((r.re - 1.5f64.exp()).abs() < 1e-12 && r.im == 0.0);
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = Complex64::new(-4.0, 0.0);
        let s = z.sqrt();
        assert!(close(s, Complex64::new(0.0, 2.0), 1e-15));
        assert!(close(s * s, z, 1e-12));
        // sqrt of a general value squares back
        let w = Complex64::new(1.0, -3.0);
        assert!(close(w.sqrt() * w.sqrt(), w, 1e-12));
        // principal branch has non-negative real part
        assert!(w.sqrt().re >= 0.0);
        assert_eq!(Complex64::ZERO.sqrt(), Complex64::ZERO);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::new(1.2, -0.7);
        let mut acc = Complex64::ONE;
        for _ in 0..5 {
            acc *= z;
        }
        assert!(close(z.powi(5), acc, 1e-12));
        assert_eq!(z.powi(0), Complex64::ONE);
        assert!(close(z.powi(-2) * z.powi(2), Complex64::ONE, 1e-12));
    }

    #[test]
    fn arg_quadrants() {
        assert_eq!(Complex64::new(1.0, 0.0).arg(), 0.0);
        assert!((Complex64::new(0.0, 1.0).arg() - PI / 2.0).abs() < 1e-15);
        assert!((Complex64::new(-1.0, 0.0).arg() - PI).abs() < 1e-15);
    }

    #[test]
    fn sum_and_from() {
        let s: Complex64 = [Complex64::ONE, Complex64::I, Complex64::new(2.0, 3.0)]
            .into_iter()
            .sum();
        assert_eq!(s, Complex64::new(3.0, 4.0));
        let r: Complex64 = 2.5.into();
        assert_eq!(r, Complex64::from_real(2.5));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finiteness() {
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
