//! Dense real-coefficient polynomials and simultaneous root finding.
//!
//! Asymptotic waveform evaluation reduces an RLC tree to a `q`-pole model
//! whose poles are the roots of the Padé denominator polynomial. The degrees
//! involved are tiny (q ≤ 8), so the Aberth–Ehrlich simultaneous iteration —
//! simple, derivative-based, and cubically convergent — is an excellent fit.

use crate::{Complex64, NumericError};

/// A polynomial with real coefficients stored lowest-degree first.
///
/// `coeffs[k]` is the coefficient of `x^k`. The representation is kept
/// normalized: the leading coefficient is non-zero (except for the zero
/// polynomial which stores a single `0.0`).
///
/// # Examples
///
/// ```
/// use rlc_numeric::Polynomial;
///
/// // p(x) = x² − 3x + 2 = (x − 1)(x − 2)
/// let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
/// assert_eq!(p.degree(), 2);
/// assert_eq!(p.eval(1.0), 0.0);
///
/// let mut roots: Vec<f64> = p.roots(1e-12, 200)?.iter().map(|z| z.re).collect();
/// roots.sort_by(f64::total_cmp);
/// assert!((roots[0] - 1.0).abs() < 1e-9 && (roots[1] - 2.0).abs() < 1e-9);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending degree order.
    ///
    /// Trailing (leading-degree) zeros are trimmed so that `degree` is
    /// meaningful. An empty coefficient list denotes the zero polynomial.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// Builds the monic polynomial with the given roots: `Π (x − rᵢ)`.
    ///
    /// Complex roots must come in conjugate pairs for the result to be real;
    /// the imaginary residue from pairing is discarded.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_numeric::{Complex64, Polynomial};
    /// let p = Polynomial::from_roots(&[Complex64::from_real(1.0), Complex64::from_real(-2.0)]);
    /// // (x − 1)(x + 2) = x² + x − 2
    /// assert_eq!(p.coeffs(), &[-2.0, 1.0, 1.0]);
    /// ```
    pub fn from_roots(roots: &[Complex64]) -> Self {
        let mut c = vec![Complex64::ONE];
        for &r in roots {
            let mut next = vec![Complex64::ZERO; c.len() + 1];
            for (k, &ck) in c.iter().enumerate() {
                next[k + 1] += ck;
                next[k] -= ck * r;
            }
            c = next;
        }
        Self::new(c.into_iter().map(|z| z.re).collect())
    }

    /// The coefficients in ascending degree order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs == [0.0]
    }

    /// Evaluates at a real point by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point by Horner's rule.
    pub fn eval_complex(&self, z: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * z + Complex64::from_real(c))
    }

    /// Returns the derivative polynomial.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_numeric::Polynomial;
    /// let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
    /// assert_eq!(p.derivative().coeffs(), &[2.0, 6.0]);
    /// ```
    pub fn derivative(&self) -> Self {
        if self.degree() == 0 {
            return Self::new(vec![0.0]);
        }
        Self::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Finds all complex roots by the Aberth–Ehrlich simultaneous iteration.
    ///
    /// Converges for the small, well-separated-root polynomials produced by
    /// Padé denominators. Roots are returned in no particular order;
    /// conjugate symmetry is preserved to within `tol`.
    ///
    /// # Errors
    ///
    /// * [`NumericError::Degenerate`] for the zero polynomial.
    /// * [`NumericError::NoConvergence`] if `max_iter` is exhausted before
    ///   every approximation stabilizes to `tol`.
    pub fn roots(&self, tol: f64, max_iter: usize) -> Result<Vec<Complex64>, NumericError> {
        if self.is_zero() {
            return Err(NumericError::Degenerate {
                context: "roots of the zero polynomial",
            });
        }
        let n = self.degree();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 {
            // c0 + c1 x = 0
            return Ok(vec![Complex64::from_real(-self.coeffs[0] / self.coeffs[1])]);
        }
        if n == 2 {
            return Ok(quadratic_roots(self.coeffs[0], self.coeffs[1], self.coeffs[2]).to_vec());
        }

        // Initial guesses: points on a circle of radius set by the Cauchy
        // bound, slightly perturbed off the real axis and off symmetry.
        let lead = *self.coeffs.last().expect("non-empty");
        let radius = 1.0
            + self
                .coeffs
                .iter()
                .take(n)
                .map(|c| (c / lead).abs())
                .fold(0.0f64, f64::max);
        let mut z: Vec<Complex64> = (0..n)
            .map(|k| {
                let theta = 2.0 * core::f64::consts::PI * (k as f64 + 0.25) / n as f64 + 0.5;
                Complex64::new(radius * theta.cos(), radius * theta.sin())
            })
            .collect();

        let deriv = self.derivative();
        for _ in 0..max_iter {
            let mut converged = true;
            for i in 0..n {
                let p = self.eval_complex(z[i]);
                let dp = deriv.eval_complex(z[i]);
                if p.norm() <= tol * (1.0 + z[i].norm()) {
                    continue;
                }
                let newton = if dp.norm_sqr() > 0.0 {
                    p / dp
                } else {
                    Complex64::new(tol.max(1e-300), tol.max(1e-300))
                };
                let mut repulsion = Complex64::ZERO;
                for (j, &zj) in z.iter().enumerate() {
                    if j != i {
                        let diff = z[i] - zj;
                        if diff.norm_sqr() > 0.0 {
                            repulsion += diff.recip();
                        }
                    }
                }
                let denom = Complex64::ONE - newton * repulsion;
                let step = if denom.norm_sqr() > 0.0 {
                    newton / denom
                } else {
                    newton
                };
                z[i] -= step;
                if step.norm() > tol * (1.0 + z[i].norm()) {
                    converged = false;
                }
            }
            if converged {
                return Ok(z);
            }
        }
        Err(NumericError::NoConvergence {
            iterations: max_iter,
        })
    }
}

/// Roots of `c + b x + a x²` (both of them, as complex numbers), computed
/// with the numerically stable citardauq/quadratic split.
///
/// # Panics
///
/// Panics if `a == 0` (not a quadratic).
pub fn quadratic_roots(c: f64, b: f64, a: f64) -> [Complex64; 2] {
    assert!(a != 0.0, "leading coefficient must be non-zero");
    let disc = b * b - 4.0 * a * c;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // Avoid cancellation: compute the larger-magnitude root first.
        let q = -0.5 * (b + sq.copysign(b));
        let r1 = if q != 0.0 { c / q } else { 0.0 };
        let r2 = q / a;
        [Complex64::from_real(r1), Complex64::from_real(r2)]
    } else {
        let sq = (-disc).sqrt();
        let re = -b / (2.0 * a);
        let im = sq / (2.0 * a);
        [Complex64::new(re, im), Complex64::new(re, -im)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_roots(p: &Polynomial) -> Vec<f64> {
        let mut r: Vec<f64> = p.roots(1e-12, 500).unwrap().iter().map(|z| z.re).collect();
        r.sort_by(f64::total_cmp);
        r
    }

    #[test]
    fn construction_trims_leading_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new(vec![]);
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
    }

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 − 2x + 3x²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(2.0), 9.0);
        let z = p.eval_complex(Complex64::I); // 1 − 2i − 3
        assert_eq!(z, Complex64::new(-2.0, -2.0));
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0]); // constant
        assert_eq!(p.derivative().coeffs(), &[0.0]);
        let p = Polynomial::new(vec![0.0, 0.0, 0.0, 4.0]); // 4x³
        assert_eq!(p.derivative().coeffs(), &[0.0, 0.0, 12.0]);
    }

    #[test]
    fn linear_root() {
        let p = Polynomial::new(vec![-6.0, 2.0]); // 2x − 6
        let r = p.roots(1e-12, 10).unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0].re - 3.0).abs() < 1e-14 && r[0].im == 0.0);
    }

    #[test]
    fn quadratic_real_and_complex() {
        let [r1, r2] = quadratic_roots(2.0, -3.0, 1.0); // (x−1)(x−2)
        let mut v = [r1.re, r2.re];
        v.sort_by(f64::total_cmp);
        assert!((v[0] - 1.0).abs() < 1e-14 && (v[1] - 2.0).abs() < 1e-14);

        let [c1, c2] = quadratic_roots(1.0, 0.0, 1.0); // x² + 1
        assert!((c1.im.abs() - 1.0).abs() < 1e-14);
        assert_eq!(c1.re, 0.0);
        assert_eq!(c1, c2.conj());
    }

    #[test]
    fn quadratic_avoids_cancellation() {
        // x² − 1e8 x + 1: roots ~1e8 and ~1e-8.
        let [r1, r2] = quadratic_roots(1.0, -1e8, 1.0);
        let (small, big) = if r1.re < r2.re {
            (r1.re, r2.re)
        } else {
            (r2.re, r1.re)
        };
        assert!((big - 1e8).abs() / 1e8 < 1e-12);
        assert!((small - 1e-8).abs() / 1e-8 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "leading coefficient")]
    fn quadratic_rejects_degenerate() {
        let _ = quadratic_roots(1.0, 1.0, 0.0);
    }

    #[test]
    fn cubic_real_roots() {
        // (x−1)(x−2)(x−4) = x³ −7x² +14x −8
        let p = Polynomial::new(vec![-8.0, 14.0, -7.0, 1.0]);
        let r = sorted_real_roots(&p);
        assert!((r[0] - 1.0).abs() < 1e-8);
        assert!((r[1] - 2.0).abs() < 1e-8);
        assert!((r[2] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn quartic_complex_pairs() {
        // (x² + 1)(x² + 4) — all roots purely imaginary.
        let p = Polynomial::new(vec![4.0, 0.0, 5.0, 0.0, 1.0]);
        let mut roots = p.roots(1e-12, 500).unwrap();
        roots.sort_by(|a, b| a.im.total_cmp(&b.im));
        for z in &roots {
            assert!(z.re.abs() < 1e-8, "expected purely imaginary, got {z}");
        }
        let ims: Vec<f64> = roots.iter().map(|z| z.im).collect();
        assert!((ims[0] + 2.0).abs() < 1e-8);
        assert!((ims[1] + 1.0).abs() < 1e-8);
        assert!((ims[2] - 1.0).abs() < 1e-8);
        assert!((ims[3] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn from_roots_round_trips() {
        let roots = [
            Complex64::from_real(-1.0),
            Complex64::new(-2.0, 3.0),
            Complex64::new(-2.0, -3.0),
        ];
        let p = Polynomial::from_roots(&roots);
        assert_eq!(p.degree(), 3);
        for &r in &roots {
            assert!(p.eval_complex(r).norm() < 1e-12);
        }
        // Recover them.
        let rec = p.roots(1e-12, 500).unwrap();
        for &orig in &roots {
            assert!(
                rec.iter().any(|z| (*z - orig).norm() < 1e-7),
                "missing root {orig}"
            );
        }
    }

    #[test]
    fn widely_separated_poles_like_awe() {
        // Time constants spanning 3 decades, as Padé denominators produce.
        let roots = [
            Complex64::from_real(-1.0),
            Complex64::from_real(-31.0),
            Complex64::from_real(-950.0),
        ];
        let p = Polynomial::from_roots(&roots);
        let rec = sorted_real_roots(&p);
        assert!((rec[0] + 950.0).abs() / 950.0 < 1e-6);
        assert!((rec[1] + 31.0).abs() / 31.0 < 1e-8);
        assert!((rec[2] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn zero_polynomial_roots_error() {
        let z = Polynomial::new(vec![0.0]);
        assert!(matches!(
            z.roots(1e-12, 10),
            Err(NumericError::Degenerate { .. })
        ));
    }

    #[test]
    fn constant_polynomial_has_no_roots() {
        let p = Polynomial::new(vec![3.0]);
        assert!(p.roots(1e-12, 10).unwrap().is_empty());
    }

    #[test]
    fn repeated_roots_converge_approximately() {
        // (x+1)²(x+3): repeated roots converge slower & less accurately —
        // accept a looser tolerance.
        let p = Polynomial::new(vec![3.0, 7.0, 5.0, 1.0]);
        let r = sorted_real_roots(&p);
        assert!((r[0] + 3.0).abs() < 1e-5);
        assert!((r[1] + 1.0).abs() < 1e-4);
        assert!((r[2] + 1.0).abs() < 1e-4);
    }
}
