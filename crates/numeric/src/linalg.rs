//! Small dense linear algebra: LU solve, complex LU solve, and
//! Householder-QR least squares.
//!
//! The problems in this workspace are tiny (moment-matching systems of order
//! q ≤ 8, curve fits with a handful of parameters), so clarity and
//! correctness win over blocking/SIMD.

use crate::{Complex64, NumericError};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use rlc_numeric::linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = m.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the rows have uneven
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if nrows == 0 || ncols == 0 {
            return Err(NumericError::DimensionMismatch {
                context: "matrix must have at least one row and column",
            });
        }
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(NumericError::DimensionMismatch {
                context: "all rows must have the same length",
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    /// Solves the square system `A·x = b` by LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `A` is not square or `b` has
    ///   the wrong length.
    /// * [`NumericError::SingularMatrix`] if a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                context: "LU solve requires a square matrix",
            });
        }
        if b.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                context: "right-hand side length must match matrix order",
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        // Forward elimination with partial pivoting.
        for k in 0..n {
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            if max < f64::MIN_POSITIVE * 16.0 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                x.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in k..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
                x[i] -= factor * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut s = x[k];
            for j in (k + 1)..n {
                s -= a[k * n + j] * x[j];
            }
            x[k] = s / a[k * n + k];
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` by Householder QR.
    ///
    /// Requires `rows ≥ cols` (an over- or exactly-determined system).
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] for under-determined shapes or a
    ///   wrong-length `b`.
    /// * [`NumericError::SingularMatrix`] if `A` is rank deficient.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_numeric::linalg::Matrix;
    /// // Fit y = c0 + c1·x to 3 points on the line y = 1 + 2x.
    /// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
    /// let c = a.solve_least_squares(&[1.0, 3.0, 5.0])?;
    /// assert!((c[0] - 1.0).abs() < 1e-12 && (c[1] - 2.0).abs() < 1e-12);
    /// # Ok::<(), rlc_numeric::NumericError>(())
    /// ```
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let (m, n) = (self.rows, self.cols);
        if m < n {
            return Err(NumericError::DimensionMismatch {
                context: "least squares requires rows >= cols",
            });
        }
        if b.len() != m {
            return Err(NumericError::DimensionMismatch {
                context: "right-hand side length must match row count",
            });
        }
        let mut r = self.data.clone();
        let mut y: Vec<f64> = b.to_vec();
        // Householder QR applied simultaneously to R and y.
        for k in 0..n {
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(r[i * n + k]);
            }
            if norm == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            let alpha = -norm.copysign(r[k * n + k]);
            // v = x − alpha·e1 (stored in-place, v[k..m])
            let mut v: Vec<f64> = (k..m).map(|i| r[i * n + k]).collect();
            v[0] -= alpha;
            let vnorm_sq: f64 = v.iter().map(|t| t * t).sum();
            if vnorm_sq > 0.0 {
                // Apply H = I − 2vvᵀ/‖v‖² to remaining columns and to y.
                for j in k..n {
                    let dot: f64 = (k..m).map(|i| v[i - k] * r[i * n + j]).sum();
                    let scale = 2.0 * dot / vnorm_sq;
                    for i in k..m {
                        r[i * n + j] -= scale * v[i - k];
                    }
                }
                let dot: f64 = (k..m).map(|i| v[i - k] * y[i]).sum();
                let scale = 2.0 * dot / vnorm_sq;
                for i in k..m {
                    y[i] -= scale * v[i - k];
                }
            }
            r[k * n + k] = alpha;
            for i in (k + 1)..m {
                r[i * n + k] = 0.0;
            }
        }
        // Back substitution on the upper-triangular R (n×n block). Rank
        // deficiency shows up as a diagonal entry that is tiny *relative* to
        // the largest diagonal magnitude.
        let max_diag = (0..n).map(|k| r[k * n + k].abs()).fold(0.0f64, f64::max);
        let threshold = max_diag * 1e-12 + f64::MIN_POSITIVE * 16.0;
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = y[k];
            for j in (k + 1)..n {
                s -= r[k * n + j] * x[j];
            }
            let d = r[k * n + k];
            if d.abs() < threshold {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            x[k] = s / d;
        }
        Ok(x)
    }
}

impl Matrix {
    /// Factors the square matrix as `P·A = L·U`, allowing many right-hand
    /// sides to be solved in O(n²) each (used by the transient simulator,
    /// which solves the same system every time step).
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if the matrix is not square.
    /// * [`NumericError::SingularMatrix`] if a pivot underflows.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_numeric::linalg::Matrix;
    /// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
    /// let lu = a.lu()?;
    /// let x = lu.solve(&[10.0, 12.0])?;
    /// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    /// # Ok::<(), rlc_numeric::NumericError>(())
    /// ```
    pub fn lu(&self) -> Result<LuDecomposition, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                context: "LU factorization requires a square matrix",
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            if max < f64::MIN_POSITIVE * 16.0 {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                perm.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor; // store L below the diagonal
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(LuDecomposition { lu: a, perm, n })
    }
}

/// A reusable LU factorization produced by [`Matrix::lu`].
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Vec<f64>,
    perm: Vec<usize>,
    n: usize,
}

impl LuDecomposition {
    /// Solves `A·x = b` using the stored factors in O(n²).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    #[allow(clippy::needless_range_loop)] // index loops read best in triangular solves
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                context: "right-hand side length must match matrix order",
            });
        }
        // Apply permutation, then forward/backward substitution. Index
        // loops are the clearest rendering of triangular solves.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
        Ok(x)
    }

    /// The order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the complex square system `A·x = b` by LU with partial pivoting.
///
/// Used for residue computation at complex poles (Vandermonde systems).
///
/// # Errors
///
/// Same conditions as [`Matrix::solve`], with pivot magnitude measured by
/// complex modulus.
///
/// # Examples
///
/// ```
/// use rlc_numeric::{Complex64, linalg::solve_complex};
/// let i = Complex64::I;
/// let one = Complex64::ONE;
/// // [2 i; -i 1]·x = [2+i; 1-i] has the solution x = [1; 1].
/// let a = vec![vec![one * 2.0, i], vec![-i, one]];
/// let b = vec![one * 2.0 + i, one - i];
/// let x = solve_complex(&a, &b)?;
/// assert!((x[0] - one).norm() < 1e-12 && (x[1] - one).norm() < 1e-12);
/// # Ok::<(), rlc_numeric::NumericError>(())
/// ```
#[allow(clippy::needless_range_loop)] // index loops read best in elimination kernels
pub fn solve_complex(
    a: &[Vec<Complex64>],
    b: &[Complex64],
) -> Result<Vec<Complex64>, NumericError> {
    let n = a.len();
    if n == 0 || a.iter().any(|row| row.len() != n) {
        return Err(NumericError::DimensionMismatch {
            context: "complex solve requires a non-empty square matrix",
        });
    }
    if b.len() != n {
        return Err(NumericError::DimensionMismatch {
            context: "right-hand side length must match matrix order",
        });
    }
    let mut m: Vec<Vec<Complex64>> = a.to_vec();
    let mut x: Vec<Complex64> = b.to_vec();
    for k in 0..n {
        let mut piv = k;
        let mut max = m[k][k].norm();
        for (i, row) in m.iter().enumerate().skip(k + 1) {
            let v = row[k].norm();
            if v > max {
                max = v;
                piv = i;
            }
        }
        if max < f64::MIN_POSITIVE * 16.0 {
            return Err(NumericError::SingularMatrix { pivot: k });
        }
        if piv != k {
            m.swap(k, piv);
            x.swap(k, piv);
        }
        let pivot = m[k][k];
        for i in (k + 1)..n {
            let factor = m[i][k] / pivot;
            if factor.norm_sqr() == 0.0 {
                continue;
            }
            for j in k..n {
                let sub = factor * m[k][j];
                m[i][j] -= sub;
            }
            let sub = factor * x[k];
            x[i] -= sub;
        }
    }
    for k in (0..n).rev() {
        let mut s = x[k];
        for j in (k + 1)..n {
            s -= m[k][j] * x[j];
        }
        x[k] = s / m[k][k];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_3x3_known_solution() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            sq.solve(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_validation() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn mul_vec_panics_on_mismatch() {
        let a = Matrix::identity(2);
        let _ = a.mul_vec(&[1.0]);
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random matrix (LCG) — no rand dependency here.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let n = 8;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            m[(i, i)] += 4.0; // diagonally dominant → well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.solve(&b).unwrap();
        let r = m.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_exact_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let x = a.solve_least_squares(&[4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // y = 2 + 0.5x with symmetric noise that cancels exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let noise = [0.1, -0.1, -0.1, 0.1];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = xs
            .iter()
            .zip(&noise)
            .map(|(&x, &n)| 2.0 + 0.5 * x + n)
            .collect();
        let c = a.solve_least_squares(&b).unwrap();
        assert!((c[0] - 2.0).abs() < 0.11);
        assert!((c[1] - 0.5).abs() < 0.11);
        // Normal-equation optimality: Aᵀ(Ax − b) = 0.
        let fit = a.mul_vec(&c);
        let resid: Vec<f64> = fit.iter().zip(&b).map(|(f, y)| f - y).collect();
        for j in 0..2 {
            let g: f64 = (0..4).map(|i| a[(i, j)] * resid[i]).sum();
            assert!(g.abs() < 1e-10, "gradient {j} = {g}");
        }
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            a.solve_least_squares(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn least_squares_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        assert!(matches!(
            a.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn lu_factor_once_solve_many() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let lu = a.lu().unwrap();
        assert_eq!(lu.order(), 3);
        // Two different right-hand sides against the one-shot solver.
        for b in [[8.0, -11.0, -3.0], [1.0, 0.0, 2.0]] {
            let x_lu = lu.solve(&b).unwrap();
            let x_direct = a.solve(&b).unwrap();
            for (p, q) in x_lu.iter().zip(&x_direct) {
                assert!((p - q).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lu_requires_pivoting_too() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = a.lu().unwrap();
        assert_eq!(lu.solve(&[2.0, 3.0]).unwrap(), vec![3.0, 2.0]);
    }

    #[test]
    fn lu_detects_singularity_and_bad_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(NumericError::SingularMatrix { .. })));
        let rect = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            rect.lu(),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let ok = Matrix::identity(2).lu().unwrap();
        assert!(matches!(
            ok.solve(&[1.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn complex_solve_diagonal() {
        let i = Complex64::I;
        let a = vec![
            vec![Complex64::from_real(2.0), Complex64::ZERO],
            vec![Complex64::ZERO, i],
        ];
        let x = solve_complex(&a, &[Complex64::from_real(4.0), i * 3.0]).unwrap();
        assert!((x[0] - Complex64::from_real(2.0)).norm() < 1e-14);
        assert!((x[1] - Complex64::from_real(3.0)).norm() < 1e-14);
    }

    #[test]
    fn complex_solve_vandermonde_residues() {
        // Residue-style system: sum of r_k over poles matches moments.
        let p1 = Complex64::new(-1.0, 2.0);
        let p2 = p1.conj();
        let a = vec![vec![Complex64::ONE, Complex64::ONE], vec![p1, p2]];
        let b = vec![Complex64::from_real(2.0), Complex64::from_real(-2.0)];
        let x = solve_complex(&a, &b).unwrap();
        // Solution must be a conjugate pair.
        assert!((x[0] - x[1].conj()).norm() < 1e-12);
        assert!(((x[0] + x[1]) - Complex64::from_real(2.0)).norm() < 1e-12);
    }

    #[test]
    fn complex_solve_errors() {
        assert!(solve_complex(&[], &[]).is_err());
        let a = vec![vec![Complex64::ZERO]];
        assert!(matches!(
            solve_complex(&a, &[Complex64::ONE]),
            Err(NumericError::SingularMatrix { .. })
        ));
        let id = vec![vec![Complex64::ONE]];
        assert!(matches!(
            solve_complex(&id, &[]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }
}
