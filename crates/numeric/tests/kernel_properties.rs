//! Property tests for the numerical kernels: root finding, polynomial
//! root recovery, and linear-algebra residuals over random inputs.

use proptest::prelude::*;
use rlc_numeric::linalg::Matrix;
use rlc_numeric::{roots, Complex64, Polynomial};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Brent finds the root of any monotone cubic with a sign change.
    #[test]
    fn brent_solves_monotone_cubics(root in -50.0f64..50.0, scale in 0.1f64..10.0) {
        let f = |x: f64| scale * (x - root) + 0.01 * (x - root).powi(3);
        let r = roots::brent(f, root - 80.0, root + 80.0, 1e-12, 300)
            .expect("bracketed root");
        prop_assert!((r - root).abs() < 1e-7, "{r} vs {root}");
    }

    /// Safeguarded Newton agrees with Brent on smooth brackets.
    #[test]
    fn newton_agrees_with_brent(a in 0.5f64..4.0, b in 0.1f64..3.0) {
        // f(x) = e^{a·x} − b − 1 has a single root.
        let f = |x: f64| (a * x).exp() - b - 1.0;
        let df = |x: f64| a * (a * x).exp();
        let lo = -10.0;
        let hi = 10.0;
        let brent = roots::brent(f, lo, hi, 1e-13, 300).expect("bracket");
        let newton =
            roots::newton_bracketed(f, df, 0.0, lo, hi, 1e-13, 300).expect("bracket");
        prop_assert!((brent - newton).abs() < 1e-9);
    }

    /// from_roots → roots recovers well-separated real roots.
    #[test]
    fn polynomial_root_roundtrip(
        seeds in proptest::collection::vec(0.1f64..10.0, 2..6),
    ) {
        // Build strictly separated negative roots: r_k = −Π(1+seed).
        let mut acc = 1.0;
        let mut wanted: Vec<f64> = Vec::new();
        for s in &seeds {
            acc *= 1.0 + s;
            wanted.push(-acc);
        }
        let complex_roots: Vec<Complex64> =
            wanted.iter().map(|&r| Complex64::from_real(r)).collect();
        let poly = Polynomial::from_roots(&complex_roots);
        let mut recovered: Vec<f64> = poly
            .roots(1e-12, 2000)
            .expect("converges")
            .iter()
            .map(|z| z.re)
            .collect();
        recovered.sort_by(f64::total_cmp);
        let mut wanted_sorted = wanted.clone();
        wanted_sorted.sort_by(f64::total_cmp);
        for (got, want) in recovered.iter().zip(&wanted_sorted) {
            prop_assert!(
                (got - want).abs() < 1e-5 * want.abs(),
                "{recovered:?} vs {wanted_sorted:?}"
            );
        }
    }

    /// LU solve leaves a tiny residual on diagonally dominant systems.
    #[test]
    fn lu_residual_small(
        entries in proptest::collection::vec(-1.0f64..1.0, 16),
        rhs in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let mut m = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                m[(i, j)] = entries[i * 4 + j];
            }
            m[(i, i)] += 5.0; // dominance → well conditioned
        }
        let x = m.solve(&rhs).expect("nonsingular");
        let back = m.mul_vec(&x);
        for (b, r) in back.iter().zip(&rhs) {
            prop_assert!((b - r).abs() < 1e-9);
        }
        // Factor-once path gives the same answer.
        let lu = m.lu().expect("nonsingular");
        let x2 = lu.solve(&rhs).expect("solves");
        for (a, b) in x.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// Least squares satisfies the normal equations on random tall systems.
    #[test]
    fn least_squares_normal_equations(
        entries in proptest::collection::vec(-1.0f64..1.0, 18),
        rhs in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let mut m = Matrix::zeros(6, 3);
        for i in 0..6 {
            for j in 0..3 {
                m[(i, j)] = entries[i * 3 + j];
            }
        }
        // Ensure full column rank by biasing the diagonal blocks.
        for j in 0..3 {
            m[(j, j)] += 3.0;
            m[(j + 3, j)] += 3.0;
        }
        let x = m.solve_least_squares(&rhs).expect("full rank");
        let fit = m.mul_vec(&x);
        let resid: Vec<f64> = fit.iter().zip(&rhs).map(|(f, y)| f - y).collect();
        // Aᵀ·resid = 0 at the optimum.
        for j in 0..3 {
            let g: f64 = (0..6).map(|i| m[(i, j)] * resid[i]).sum();
            prop_assert!(g.abs() < 1e-8, "gradient {j} = {g}");
        }
    }

    /// Complex field laws: (a·b)·a⁻¹ ≈ b for non-tiny a.
    #[test]
    fn complex_division_inverts_multiplication(
        ar in -100.0f64..100.0, ai in -100.0f64..100.0,
        br in -100.0f64..100.0, bi in -100.0f64..100.0,
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        prop_assume!(a.norm() > 1e-3);
        let back = a * b / a;
        prop_assert!((back - b).norm() <= 1e-9 * (1.0 + b.norm()));
    }

    /// exp(z)·exp(−z) = 1.
    #[test]
    fn complex_exp_inverse(re in -20.0f64..20.0, im in -20.0f64..20.0) {
        let z = Complex64::new(re, im);
        let product = z.exp() * (-z).exp();
        prop_assert!((product - Complex64::ONE).norm() < 1e-9);
    }
}
