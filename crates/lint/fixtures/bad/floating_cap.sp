.input in
R1 in a 10
C1 in a 1p
