.input in
R1 in a 10
R1 a b 10
C1 b 0 1p
