.input in
.input src
R1 src a 10
C1 a 0 1p
