.input in
R1 in 0 10
