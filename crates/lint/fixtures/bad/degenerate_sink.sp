.input in
L1 in a 5n
C1 a 0 1p
