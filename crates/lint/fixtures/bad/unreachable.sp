.input in
R1 in a 10
C1 a 0 1p
R2 x y 10
