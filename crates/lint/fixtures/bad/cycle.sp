.input in
R1 in a 10
R2 a b 10
R3 b in 10
C1 b 0 1p
