* comment only
