.input in
R1 in n1 25
C1 n1 0 0
