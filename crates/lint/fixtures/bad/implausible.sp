.input in
R1 in n1 10M
C1 n1 0 0.5p
