R1 a b 10
C1 b 0 1p
