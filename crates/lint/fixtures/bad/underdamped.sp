* zeta ~ 0.265 at the sink: analyzable but flagged
.input in
R1 in n1 25
C1 n1 0 0.5p
L2 n1 n2 5n
C2 n2 0 1p
.end
