.input in
R1 in a 10
C1 a 0 1p
C9 zz 0 1p
