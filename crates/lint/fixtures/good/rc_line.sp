* a clean two-section RC line
.input in
R1 in n1 25
C1 n1 0 0.5p
R2 n1 n2 25
C2 n2 0 0.5p
.end
