* deeply overdamped RLC (zeta ~ 16): first-order hint expected
.input in
R1 in n1 1k
L2 n1 n2 1n
C2 n2 0 1p
.end
