* moderately damped RLC section (zeta ~ 1.6)
.input in
R1 in n1 100
L2 n1 n2 1n
C2 n2 0 1p
.end
