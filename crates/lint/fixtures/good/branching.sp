* a branching RLC tree, all sinks moderately damped
.input in
R1 in t 50
C1 t 0 0.2p
L2 t a 1n
C2 a 0 1p
R3 t b 80
C3 b 0 0.5p
.end
