//! Per-rule coverage: every code in the catalog fires on a minimal deck,
//! with the right severity, span, and gating behaviour.

use rlc_lint::{lint_deck, lint_deck_with, lint_path, lint_tree, LintConfig, Rule, Severity};
use rlc_tree::{RlcSection, RlcTree};
use rlc_units::{Capacitance, Inductance, Resistance};

/// The codes a deck fires, in canonical report order.
fn codes(deck: &str) -> Vec<&'static str> {
    lint_deck(deck).codes()
}

#[test]
fn l001_empty_deck() {
    for deck in ["", "* comment only\n", ".input in\n.end\n"] {
        assert_eq!(codes(deck), vec!["L001"], "deck {deck:?}");
    }
}

#[test]
fn l002_cycle_with_line_span() {
    let report = lint_deck(".input in\nR1 in a 10\nR2 a b 10\nR3 b in 10\nC1 b 0 1p\n");
    assert_eq!(report.codes(), vec!["L002"]);
    let d = &report.diagnostics()[0];
    assert_eq!(d.rule.severity(), Severity::Error);
    assert!(d.line.is_some(), "cycle finding carries the card line");
}

#[test]
fn l003_unreachable_element() {
    let report = lint_deck(".input in\nR1 in a 10\nC1 a 0 1p\nR2 x y 10\n");
    assert_eq!(report.codes(), vec!["L003"]);
    assert_eq!(report.diagnostics()[0].line, Some(4));
}

#[test]
fn l004_no_input() {
    assert_eq!(codes("R1 a b 10\nC1 b 0 1p\n"), vec!["L004"]);
    // A named input that touches nothing is the same rule, anchored to
    // the .input line.
    let report = lint_deck(".input ghost\nR1 in a 10\nC1 a 0 1p\n");
    assert_eq!(report.codes(), vec!["L004"]);
    assert_eq!(report.diagnostics()[0].line, Some(1));
}

#[test]
fn l005_grounded_series() {
    assert_eq!(codes(".input in\nR1 in 0 10\n"), vec!["L005"]);
    assert_eq!(codes(".input in\nL1 gnd in 1n\n"), vec!["L005"]);
}

#[test]
fn l006_floating_capacitor() {
    assert_eq!(codes(".input in\nR1 in a 10\nC1 in a 1p\n"), vec!["L006"]);
    assert_eq!(codes(".input in\nR1 in a 10\nC1 0 gnd 1p\n"), vec!["L006"]);
}

#[test]
fn l007_orphan_capacitor() {
    // On an unknown node, and on the input node.
    assert_eq!(
        codes(".input in\nR1 in a 10\nC1 a 0 1p\nC9 zz 0 1p\n"),
        vec!["L007"]
    );
    assert_eq!(
        codes(".input in\nR1 in a 10\nC1 a 0 1p\nC2 in 0 1p\n"),
        vec!["L007"]
    );
}

#[test]
fn l008_duplicate_label_is_warning_only() {
    let report = lint_deck(".input in\nR1 in a 10\nR1 a b 10\nC1 b 0 1p\n");
    assert!(report.is_clean());
    assert!(report.codes().contains(&"L008"));
}

#[test]
fn l009_load_free_leaf() {
    let report = lint_deck(".input in\nR1 in n1 25\nC1 n1 0 1p\nR2 n1 n2 25\n");
    assert!(report.is_clean());
    assert!(report.codes().contains(&"L009"));
    let leaf = report
        .diagnostics()
        .iter()
        .find(|d| d.rule == Rule::LoadFreeLeaf)
        .expect("L009 fires");
    assert_eq!(leaf.node.as_deref(), Some("n2"), "original node name kept");
}

#[test]
fn l010_duplicate_input() {
    let report = lint_deck(".input in\n.input src\nR1 src a 10\nC1 a 0 1p\n");
    assert!(report.is_clean());
    assert!(report.codes().contains(&"L010"));
    assert_eq!(report.diagnostics()[0].line, Some(2));
}

#[test]
fn l101_malformed_cards_collect_multiple() {
    let report = lint_deck(".input in\nR1 in n1\nQ7 a b 10\nR2 in n2 bogus\nC1 n2 0 1p\n");
    let l101: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.rule == Rule::MalformedCard)
        .collect();
    assert_eq!(l101.len(), 3, "one finding per malformed card: {report:?}");
    assert_eq!(
        l101.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![Some(2), Some(3), Some(4)]
    );
}

#[test]
fn l102_bad_values() {
    for deck in [
        ".input in\nR1 in n1 NaN\nC1 n1 0 0.5p\n",
        ".input in\nR1 in n1 1e999\nC1 n1 0 0.5p\n",
        ".input in\nR1 in n1 -25\nC1 n1 0 0.5p\n",
        ".input in\nR1 in n1 25\nC1 n1 0 -0.5p\n",
        ".input in\nR1 in n1 25\nL1 n1 n2 -1n\nC1 n2 0 0.5p\n",
    ] {
        assert_eq!(codes(deck), vec!["L102"], "deck {deck:?}");
    }
}

#[test]
fn l103_degenerate_sink() {
    let report = lint_deck(".input in\nL1 in a 5n\nC1 a 0 1p\n");
    assert!(report.codes().contains(&"L103"), "{report:?}");
}

#[test]
fn l104_zero_load_net_suppresses_per_sink_noise() {
    let report = lint_deck(".input in\nR1 in n1 25\nC1 n1 0 0\n");
    assert_eq!(report.codes(), vec!["L104"]);
}

#[test]
fn l105_implausible_magnitudes() {
    assert_eq!(
        codes(".input in\nR1 in n1 10M\nC1 n1 0 0.5p\n"),
        vec!["L105", "L202"]
    );
    assert_eq!(
        codes(".input in\nR1 in n1 25\nC1 n1 0 2u\n"),
        vec!["L105", "L202"]
    );
    assert_eq!(
        codes(".input in\nR1 in n1 25\nL1 n1 n2 1m\nC1 n2 0 1p\n"),
        vec!["L105", "L201"]
    );
}

#[test]
fn l201_underdamped_sink_matches_eq29() {
    // T_RC = 37.5 ps, T_LC = 5e-21 s² → ζ ≈ 0.265 at sink n2.
    let report = lint_deck("R1 in n1 25\nC1 n1 0 0.5p\nL2 n1 n2 5n\nC2 n2 0 1p\n");
    assert!(report.is_clean());
    assert_eq!(report.codes(), vec!["L201"]);
    let d = &report.diagnostics()[0];
    assert_eq!(d.node.as_deref(), Some("n2"));
    assert!(d.message.contains("0.265"), "{}", d.message);
    // The threshold is configurable; a permissive floor silences it.
    let lax = LintConfig {
        zeta_warn_below: 0.1,
        ..LintConfig::default()
    };
    assert!(
        lint_deck_with("R1 in n1 25\nC1 n1 0 0.5p\nL2 n1 n2 5n\nC2 n2 0 1p\n", &lax).is_spotless()
    );
}

#[test]
fn l202_deep_rc_hints() {
    // Purely RC flavour.
    assert_eq!(
        codes(".input in\nR1 in n1 25\nC1 n1 0 0.5p\n"),
        vec!["L202"]
    );
    // Deeply overdamped RLC flavour (ζ ≈ 15.8 ≥ 10).
    assert_eq!(
        codes(".input in\nR1 in n1 1k\nL2 n1 n2 1n\nC2 n2 0 1p\n"),
        vec!["L202"]
    );
    // A moderately damped net gets no hint.
    assert!(lint_deck(".input in\nR1 in n1 100\nL2 n1 n2 1n\nC2 n2 0 1p\n").is_spotless());
}

#[test]
fn l301_unreadable_deck() {
    let report = lint_path(
        std::path::Path::new("fixtures/does-not-exist.sp"),
        &LintConfig::default(),
    );
    assert_eq!(report.codes(), vec!["L301"]);
    assert!(!report.is_clean());
}

#[test]
fn lint_tree_covers_in_memory_trees() {
    assert_eq!(lint_tree(&RlcTree::new()).codes(), vec!["L001"]);
    let mut tree = RlcTree::new();
    let root = tree.add_root_section(RlcSection::new(
        Resistance::from_ohms(25.0),
        Inductance::ZERO,
        Capacitance::from_picofarads(0.5),
    ));
    tree.add_section(
        root,
        RlcSection::new(
            Resistance::ZERO,
            Inductance::from_nanohenries(5.0),
            Capacitance::from_picofarads(1.0),
        ),
    );
    let report = lint_tree(&tree);
    assert_eq!(report.codes(), vec!["L201"]);
    assert_eq!(report.diagnostics()[0].node.as_deref(), Some("n1"));
}

#[test]
fn clean_decks_are_spotless() {
    let deck = ".input in\nR1 in t 50\nC1 t 0 0.2p\nL2 t a 1n\nC2 a 0 1p\nR3 t b 80\nC3 b 0 0.5p\n";
    let report = lint_deck(deck);
    assert!(report.is_spotless(), "{report:?}");
    assert!(report.passes(true));
}

#[test]
fn primary_finding_drives_gates() {
    // Mixed severities: the error outranks the warning for gate messages.
    let report = lint_deck(".input in\nR1 in n1 -25\nR1 n1 n2 25\nC1 n2 0 1p\n");
    let primary = report.primary().expect("findings exist");
    assert_eq!(primary.rule, Rule::BadValue);
}
