//! The load-bearing property of the whole gate design: **a deck lints
//! error-free iff `Netlist::parse` accepts it**. Warnings and infos never
//! block parsing; any error-severity finding predicts a parse failure.
//!
//! `rlc-serve` relies on this to reject work before admission without ever
//! refusing a deck the engine could serve, and `rlc-engine`'s batch
//! pre-check relies on it to predict per-net failures.

use proptest::prelude::*;
use rlc_lint::{lint_coupled_deck, lint_deck, lint_synth_deck};
use rlc_tree::coupled::CoupledGroup;
use rlc_tree::netlist::Netlist;
use rlc_tree::synth::SynthDeck;

/// A generator of decks spanning the interesting space: mostly valid
/// topologies, with mutations that hit every scanner path.
fn decks() -> impl Strategy<Value = String> {
    let section = (0u32..4, 1u32..100, 0u32..100);
    (
        proptest::collection::vec(section, 1..12),
        0u32..12, // mutation selector
    )
        .prop_map(|(sections, mutation)| {
            let mut deck = String::from(".input in\n");
            for (i, (kind, series, cap)) in sections.iter().enumerate() {
                let parent = if i == 0 {
                    "in".to_owned()
                } else {
                    format!("m{}", i - 1)
                };
                let me = format!("m{i}");
                if kind % 2 == 0 {
                    deck.push_str(&format!("R{i} {parent} {me} {series}\n"));
                } else {
                    deck.push_str(&format!("L{i} {parent} {me} {series}n\n"));
                }
                if *cap > 0 {
                    deck.push_str(&format!("C{i} {me} 0 {cap}f\n"));
                }
            }
            match mutation {
                0 => deck.push_str("Rbad m0\n"),
                1 => deck.push_str("Q9 m0 zz 10\n"),
                2 => deck.push_str("Rneg m0 zz -5\n"),
                3 => deck.push_str("Rnan m0 zz NaN\n"),
                4 => deck.push_str("Rinf m0 zz 1e999\n"),
                5 => deck.push_str("Rloop m0 in 10\n"),
                6 => deck.push_str("Rfar aa bb 10\n"),
                7 => deck.push_str("Cfar zz 0 1p\n"),
                8 => deck.push_str("Rgnd m0 0 10\n"),
                9 => deck.push_str("Cfloat in m0 1p\n"),
                _ => {} // leave the deck valid
            }
            deck
        })
}

/// A generator of *coupled* decks: 1–3 `.net` blocks built from the same
/// per-net section chains as [`decks`], with `K` cards and mutations that
/// hit every coupled-scanner path (`.net` grammar, reference resolution,
/// coupling values, per-net chunk faults).
fn coupled_decks() -> impl Strategy<Value = String> {
    let section = (0u32..4, 1u32..100, 1u32..100);
    let net = proptest::collection::vec(section, 1..6);
    (
        proptest::collection::vec(net, 1..4),
        0u32..16, // mutation selector
    )
        .prop_map(|(nets, mutation)| {
            let mut deck = String::new();
            for (n, sections) in nets.iter().enumerate() {
                deck.push_str(&format!(".net net{n}\n"));
                for (i, (kind, series, cap)) in sections.iter().enumerate() {
                    let parent = if i == 0 {
                        "in".to_owned()
                    } else {
                        format!("m{}", i - 1)
                    };
                    let me = format!("m{i}");
                    if kind % 2 == 0 {
                        deck.push_str(&format!("R{i} {parent} {me} {series}\n"));
                    } else {
                        deck.push_str(&format!("L{i} {parent} {me} {series}n\n"));
                    }
                    deck.push_str(&format!("C{i} {me} 0 {cap}f\n"));
                }
            }
            if nets.len() > 1 {
                deck.push_str("K1 net0.m0 net1.m0 0.05p\n");
            }
            match mutation {
                0 => deck.push_str("K9 net0.m0 ghost.m0 0.1p\n"),
                1 => deck.push_str("K9 net0.m0 net0.m0 0.1p\n"),
                2 => deck.push_str("K9 net0.m0 net0.zz 0.1p\n"),
                3 => deck.push_str("K9 net0.m0 0.1p\n"),
                4 => deck.push_str("K9 net0.m0 nodot 0.1p\n"),
                5 => deck.push_str("K9 net0.m0 net0.m0 0\n"),
                6 => deck.push_str("K9 net0.m0 net0.m0 NaN\n"),
                7 => deck.push_str("K9 net0.m0 net0.m0 1e999\n"),
                8 => deck.push_str("K9 net0.m0 net0.m0 oops\n"),
                9 => deck.push_str(".net\n"),
                10 => deck.push_str(".net two words\n"),
                11 => deck.push_str(".net dotted.name\n"),
                12 => deck.push_str(".net net0\nR1 in n1 10\nC1 n1 0 1p\n"),
                13 => deck.push_str("Rbad m0\n"),
                14 => deck = format!("Rearly in n1 10\n{deck}"),
                _ => {} // leave the deck valid
            }
            deck
        })
}

/// A generator of *synthesis* decks: a valid section chain plus
/// `.lib`/`.use`/`.driver`/`.require` cards, with mutations hitting every
/// synthesis-scanner path (card grammar, buffer resolution, resistance
/// signs, constraint-node resolution, element faults underneath).
fn synth_decks() -> impl Strategy<Value = String> {
    let section = (0u32..4, 1u32..100, 1u32..100);
    (
        proptest::collection::vec(section, 1..8),
        0u32..20, // mutation selector
    )
        .prop_map(|(sections, mutation)| {
            let mut deck = String::from(".input in\n");
            for (i, (kind, series, cap)) in sections.iter().enumerate() {
                let parent = if i == 0 {
                    "in".to_owned()
                } else {
                    format!("m{}", i - 1)
                };
                let me = format!("m{i}");
                if kind % 2 == 0 {
                    deck.push_str(&format!("R{i} {parent} {me} {series}\n"));
                } else {
                    deck.push_str(&format!("L{i} {parent} {me} {series}n\n"));
                }
                deck.push_str(&format!("C{i} {me} 0 {cap}f\n"));
            }
            deck.push_str(".lib bufa r=120 cin=4f tin=15p\n");
            match mutation {
                0 => deck.push_str(".lib short r=1k cin=4f\n"),
                1 => deck.push_str(".lib keys r=1k cin=4f zap=1p\n"),
                2 => deck.push_str(".lib keys r=1k cin=4f cin=5f\n"),
                3 => deck.push_str(".lib bufa r=2k cin=4f tin=1p\n"),
                4 => deck.push_str(".lib zero r=0 cin=4f tin=1p\n"),
                5 => deck.push_str(".lib neg r=-5 cin=4f tin=1p\n"),
                6 => deck.push_str(".lib bad r=oops cin=4f tin=1p\n"),
                7 => deck.push_str(".lib nn r=1k cin=-4f tin=1p\n"),
                8 => deck.push_str(".use ghost\n"),
                9 => deck.push_str(".use bufa\n.use bufa\n"),
                10 => deck.push_str(".use one two\n"),
                11 => deck.push_str(".driver 0\n"),
                12 => deck.push_str(".driver 100\n.driver 200\n"),
                13 => deck.push_str(".driver\n"),
                14 => deck.push_str(".require ghost 1n\n"),
                15 => deck.push_str(".require m0 -1p\n"),
                16 => deck.push_str(".require m0 1p\n.require m0 2p\n"),
                17 => deck.push_str(".require m0\n"),
                18 => deck.push_str("Rbad m0\n"),
                _ => deck.push_str(".use bufa\n.driver 150\n.require m0 2n\n"),
            }
            deck
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lints_error_free_iff_the_parser_accepts(deck in decks()) {
        let report = lint_deck(&deck);
        let parsed = Netlist::parse(&deck);
        let agree = report.is_clean() == parsed.is_ok();
        prop_assert!(agree, "lint/parse disagree on {deck:?}: {report:?} vs {:?}", parsed.err());
    }

    #[test]
    fn reports_are_deterministic(deck in decks()) {
        prop_assert_eq!(lint_deck(&deck), lint_deck(&deck));
    }

    #[test]
    fn coupled_lints_error_free_iff_the_parser_accepts(deck in coupled_decks()) {
        let report = lint_coupled_deck(&deck);
        let parsed = CoupledGroup::parse(&deck);
        let agree = report.is_clean() == parsed.is_ok();
        prop_assert!(
            agree,
            "coupled lint/parse disagree on {deck:?}: {report:?} vs {:?}",
            parsed.err()
        );
    }

    #[test]
    fn coupled_reports_are_deterministic(deck in coupled_decks()) {
        prop_assert_eq!(lint_coupled_deck(&deck), lint_coupled_deck(&deck));
    }

    #[test]
    fn synth_lints_error_free_iff_the_parser_accepts(deck in synth_decks()) {
        let report = lint_synth_deck(&deck);
        let parsed = SynthDeck::parse(&deck);
        let agree = report.is_clean() == parsed.is_ok();
        prop_assert!(
            agree,
            "synth lint/parse disagree on {deck:?}: {report:?} vs {:?}",
            parsed.err()
        );
    }

    #[test]
    fn synth_reports_are_deterministic(deck in synth_decks()) {
        prop_assert_eq!(lint_synth_deck(&deck), lint_synth_deck(&deck));
    }
}
