//! The `lint` CLI against the checked-in fixture tree: byte-exact
//! `rlc-lint/1` output, worker-count independence, and gate exit codes.
//!
//! `fixtures/expected.json` is the frozen golden; the CI `lint-smoke` job
//! re-asserts the same bytes from the repository root on both feature
//! configurations.

// Test-support helpers sit outside `#[test]` fns, so the workspace
// unwrap/expect deny (scoped to library code via clippy.toml) needs an
// explicit test-file opt-out here.
#![allow(clippy::expect_used)]

use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("lint binary runs")
}

fn golden() -> String {
    std::fs::read_to_string("fixtures/expected.json").expect("golden checked in")
}

#[test]
fn json_output_matches_the_golden_bytes() {
    let out = lint(&["--json", "fixtures"]);
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden());
    // Errors in the fixture set: gate fails (exit 1), but output is complete.
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn json_output_is_worker_count_independent() {
    let golden = golden();
    for workers in ["1", "2", "4", "8"] {
        let out = lint(&["--json", "--workers", workers, "fixtures"]);
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            golden,
            "workers={workers} must produce identical bytes"
        );
    }
}

#[test]
fn good_decks_pass_the_default_gate() {
    let out = lint(&["fixtures/good"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("4 decks: 0 errors, 0 warnings, 2 infos"),
        "{text}"
    );
}

#[test]
fn deny_warnings_tightens_the_gate() {
    // Warnings alone pass by default…
    let out = lint(&["fixtures/bad/underdamped.sp"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // …and fail under --deny-warnings.
    let out = lint(&["--deny-warnings", "fixtures/bad/underdamped.sp"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L201 warning"), "{text}");
}

#[test]
fn file_labels_use_the_path_as_given() {
    let out = lint(&["--json", "fixtures/good/rc_line.sp"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"deck\": \"fixtures/good/rc_line.sp\""),
        "{text}"
    );
}

#[test]
fn missing_files_surface_as_l301_not_a_crash() {
    let out = lint(&["no/such/deck.sp"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L301 error"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(lint(&[]).status.code(), Some(2));
    assert_eq!(lint(&["--workers", "0", "x.sp"]).status.code(), Some(2));
    assert_eq!(lint(&["--bogus"]).status.code(), Some(2));
}

#[test]
fn rules_listing_covers_the_catalog() {
    let out = lint(&["--rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for code in ["L001", "L010", "L101", "L105", "L201", "L202", "L301"] {
        assert!(text.contains(code), "catalog lists {code}: {text}");
    }
}
