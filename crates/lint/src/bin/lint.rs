//! `lint` — static analysis for netlist decks.
//!
//! ```text
//! lint [--json] [--deny-warnings] [--workers N] <path>...
//! lint --rules
//! ```
//!
//! Each path is a deck file or a directory searched recursively for `*.sp`
//! files. Directory decks are labelled by their path *relative to the
//! directory argument*, so the same fixture tree produces byte-identical
//! output wherever it is checked out. Decks are linted in label order;
//! `--workers N` fans the work out over N threads with a deterministic
//! assignment, so the report bytes never depend on the worker count.
//!
//! Exit status: `0` when every deck passes, `1` when any deck fails the
//! gate (`--deny-warnings` makes warnings fail too), `2` on usage errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rlc_lint::{lint_path, render_document, LintConfig, LintReport, Rule};

struct Options {
    json: bool,
    deny_warnings: bool,
    workers: usize,
    paths: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("usage: lint [--json] [--deny-warnings] [--workers N] <path>...");
    eprintln!("       lint --rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        workers: 1,
        paths: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if n == 0 {
                    return usage();
                }
                opts.workers = n;
            }
            "--rules" => {
                print_rules();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: lint [--json] [--deny-warnings] [--workers N] <path>...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("lint: unknown flag {other:?}");
                return usage();
            }
            other => opts.paths.push(PathBuf::from(other)),
        }
    }
    if opts.paths.is_empty() {
        return usage();
    }

    // (label, file) jobs, labels sorted for a stable document order.
    let mut jobs: Vec<(String, PathBuf)> = Vec::new();
    for path in &opts.paths {
        if path.is_dir() {
            let mut files = Vec::new();
            collect_decks(path, &mut files);
            for file in files {
                let label = file
                    .strip_prefix(path)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                jobs.push((label, file));
            }
        } else {
            jobs.push((path.to_string_lossy().replace('\\', "/"), path.clone()));
        }
    }
    jobs.sort_by(|a, b| a.0.cmp(&b.0));

    let reports = run_jobs(&jobs, opts.workers);

    if opts.json {
        print!("{}", render_document(&reports));
    } else {
        for (label, report) in &reports {
            print!("{}", report.render_human(label));
        }
        let errors: usize = reports.iter().map(|(_, r)| r.errors()).sum();
        let warnings: usize = reports.iter().map(|(_, r)| r.warnings()).sum();
        let infos: usize = reports.iter().map(|(_, r)| r.infos()).sum();
        println!(
            "{} decks: {errors} errors, {warnings} warnings, {infos} infos",
            reports.len()
        );
    }

    let pass = reports.iter().all(|(_, r)| r.passes(opts.deny_warnings));
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Lints `jobs` over `workers` threads. Worker `w` takes jobs `w, w+N,
/// w+2N, …` and results land back in job order, so the output is
/// byte-identical for every worker count.
fn run_jobs(jobs: &[(String, PathBuf)], workers: usize) -> Vec<(String, LintReport)> {
    let config = LintConfig::default();
    let workers = workers.min(jobs.len()).max(1);
    let mut slots: Vec<Option<LintReport>> = vec![None; jobs.len()];
    if workers <= 1 {
        for (slot, (_, file)) in slots.iter_mut().zip(jobs) {
            *slot = Some(lint_path(file, &config));
        }
    } else {
        let results = std::sync::Mutex::new(vec![None; jobs.len()]);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let results = &results;
                let config = &config;
                scope.spawn(move || {
                    for (idx, (_, file)) in jobs.iter().enumerate().skip(w).step_by(workers) {
                        let report = lint_path(file, config);
                        if let Ok(mut slots) = results.lock() {
                            slots[idx] = Some(report);
                        }
                    }
                });
            }
        });
        if let Ok(filled) = results.into_inner() {
            slots = filled;
        }
    }
    jobs.iter()
        .zip(slots)
        .map(|((label, _), report)| (label.clone(), report.unwrap_or_default()))
        .collect()
}

/// Recursively collects `*.sp` files under `dir` in a deterministic
/// (name-sorted) order.
fn collect_decks(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_decks(&entry, out);
        } else if entry.extension().is_some_and(|ext| ext == "sp") {
            out.push(entry);
        }
    }
}

fn print_rules() {
    println!("rlc-lint rule catalog (see DESIGN.md §12):");
    for &rule in Rule::ALL {
        println!(
            "  {} {:<8} {}",
            rule.code(),
            rule.severity(),
            rule.summary()
        );
    }
}
