//! The rule catalog: stable codes, severities and tiers.
//!
//! Codes are append-only: once published in a report, a code keeps its
//! meaning forever. New rules take fresh codes; retired rules leave gaps.
//! The catalog is mirrored in DESIGN.md §12.

use core::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the deck cannot be analyzed at all (it will not parse or
/// will not assemble into a tree). `Warning` means analysis is possible but
/// the result is degenerate or falls in a regime the model is known to
/// grade poorly on. `Info` is advice with no correctness implication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    /// The lowercase wire spelling used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which analysis stage a rule belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Graph shape: the element graph must be a tree rooted at the input.
    Structural,
    /// Card-level value sanity: finite, non-negative, plausibly on-chip.
    Physical,
    /// Model applicability: where eq. 29/30's two-pole fit degrades.
    ModelRegime,
    /// Problems reading the deck before any analysis (CLI file mode).
    Io,
    /// Coupled-deck constructs: `.net` blocks and `K` coupling capacitors
    /// (see `rlc_tree::coupled`).
    Coupling,
    /// Synthesis-deck constructs: `.lib`/`.use`/`.driver`/`.require`
    /// cards (see `rlc_tree::synth`).
    Synthesis,
}

/// Every rule the analyzer can fire, with its stable code.
///
/// The `L0xx` block is structural, `L1xx` physical, `L2xx` model-regime,
/// `L3xx` I/O, `L4xx` coupling, `L5xx` synthesis. See [`Rule::code`],
/// [`Rule::severity`], [`Rule::tier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// The deck contains no series elements at all.
    EmptyDeck,
    /// A series element closes a cycle back into the visited tree.
    Cycle,
    /// A series element is not reachable from the input node.
    Unreachable,
    /// No `.input` directive and no node named `in`, or the named input
    /// touches no series element.
    NoInput,
    /// A series element connects to ground, which a tree cannot contain.
    GroundedSeries,
    /// A capacitor card connects two non-ground nodes.
    FloatingCapacitor,
    /// A capacitor sits on the input node or on a node no series element
    /// reaches.
    OrphanCapacitor,
    /// Two cards share the same label.
    DuplicateLabel,
    /// A leaf node carries no capacitive load, so it contributes nothing
    /// to any Elmore sum and has no meaningful delay of its own.
    LoadFreeLeaf,
    /// A second `.input` directive silently overrides the first.
    DuplicateInput,
    /// A card does not match `<name> <node> <node> <value>` (wrong field
    /// count, unknown card letter, unparsable value syntax).
    MalformedCard,
    /// A value parsed but is non-finite or negative, violating the
    /// element contract from `RlcSection::new`.
    BadValue,
    /// A sink node has `T_RC = 0`: the second-order model (eq. 29) is
    /// degenerate there and predicts zero delay.
    DegenerateSink,
    /// The whole net has zero capacitance, so every tree sum vanishes.
    ZeroLoadNet,
    /// An element value is finite and positive but outside the plausible
    /// on-chip magnitude range for its kind.
    ImplausibleValue,
    /// A sink's damping factor ζ (eq. 29) is below the configured floor;
    /// paper Section V only bounds the two-pole model's error for
    /// moderately damped responses.
    UnderdampedSink,
    /// Every sink is deep-RC (ζ far above 1 or `T_LC = 0` outright): the
    /// first-order Elmore/Wyatt model would do the same job cheaper.
    DeepRcNet,
    /// The deck file could not be read.
    UnreadableDeck,
    /// A `K` card references a net no `.net` block declares.
    UnknownCouplingNet,
    /// A `K` card joins a net to itself; coupling is between *different*
    /// nets (intra-net capacitance belongs on a `C` card).
    SelfCoupling,
    /// A coupling capacitor value is zero, negative, or non-finite.
    NonPositiveCouplingCap,
    /// A `K` card references a node that is not a section node of its net
    /// (unknown name, or the pinned input node).
    DanglingCouplingNode,
    /// A net is coupled to more distinct aggressors than the configured
    /// limit; the decoupled Miller analysis compounds pessimism per
    /// aggressor, so wide fan-in estimates deserve scrutiny.
    TooManyAggressors,
    /// Two `.net` blocks share a name, so coupling references are
    /// ambiguous.
    DuplicateNet,
    /// A `.use` card selects a buffer no `.lib` card defines.
    UnknownBufferRef,
    /// A `.driver` or `.lib r=` resistance is zero, negative, or
    /// non-finite; the synthesizer divides by these.
    NonPositiveSynthResistance,
    /// A `.require` constraint names a node the element portion never
    /// creates.
    ConstraintOnUnknownNode,
    /// A synthesis card does not match its grammar (field count, key set,
    /// value syntax, duplicate definition).
    MalformedSynthCard,
    /// A deck uses synthesis directives but defines no `.lib` buffer, so
    /// there is nothing the synthesizer could insert.
    MissingBufferLibrary,
}

impl Rule {
    /// Every rule, in code order. Useful for documentation and tests.
    pub const ALL: &'static [Rule] = &[
        Rule::EmptyDeck,
        Rule::Cycle,
        Rule::Unreachable,
        Rule::NoInput,
        Rule::GroundedSeries,
        Rule::FloatingCapacitor,
        Rule::OrphanCapacitor,
        Rule::DuplicateLabel,
        Rule::LoadFreeLeaf,
        Rule::DuplicateInput,
        Rule::MalformedCard,
        Rule::BadValue,
        Rule::DegenerateSink,
        Rule::ZeroLoadNet,
        Rule::ImplausibleValue,
        Rule::UnderdampedSink,
        Rule::DeepRcNet,
        Rule::UnreadableDeck,
        Rule::UnknownCouplingNet,
        Rule::SelfCoupling,
        Rule::NonPositiveCouplingCap,
        Rule::DanglingCouplingNode,
        Rule::TooManyAggressors,
        Rule::DuplicateNet,
        Rule::UnknownBufferRef,
        Rule::NonPositiveSynthResistance,
        Rule::ConstraintOnUnknownNode,
        Rule::MalformedSynthCard,
        Rule::MissingBufferLibrary,
    ];

    /// The stable wire code, `L001`..`L505`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::EmptyDeck => "L001",
            Rule::Cycle => "L002",
            Rule::Unreachable => "L003",
            Rule::NoInput => "L004",
            Rule::GroundedSeries => "L005",
            Rule::FloatingCapacitor => "L006",
            Rule::OrphanCapacitor => "L007",
            Rule::DuplicateLabel => "L008",
            Rule::LoadFreeLeaf => "L009",
            Rule::DuplicateInput => "L010",
            Rule::MalformedCard => "L101",
            Rule::BadValue => "L102",
            Rule::DegenerateSink => "L103",
            Rule::ZeroLoadNet => "L104",
            Rule::ImplausibleValue => "L105",
            Rule::UnderdampedSink => "L201",
            Rule::DeepRcNet => "L202",
            Rule::UnreadableDeck => "L301",
            Rule::UnknownCouplingNet => "L401",
            Rule::SelfCoupling => "L402",
            Rule::NonPositiveCouplingCap => "L403",
            Rule::DanglingCouplingNode => "L404",
            Rule::TooManyAggressors => "L405",
            Rule::DuplicateNet => "L406",
            Rule::UnknownBufferRef => "L501",
            Rule::NonPositiveSynthResistance => "L502",
            Rule::ConstraintOnUnknownNode => "L503",
            Rule::MalformedSynthCard => "L504",
            Rule::MissingBufferLibrary => "L505",
        }
    }

    /// The fixed severity of this rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::EmptyDeck
            | Rule::Cycle
            | Rule::Unreachable
            | Rule::NoInput
            | Rule::GroundedSeries
            | Rule::FloatingCapacitor
            | Rule::OrphanCapacitor
            | Rule::MalformedCard
            | Rule::BadValue
            | Rule::UnreadableDeck
            | Rule::UnknownCouplingNet
            | Rule::SelfCoupling
            | Rule::NonPositiveCouplingCap
            | Rule::DanglingCouplingNode
            | Rule::DuplicateNet
            | Rule::UnknownBufferRef
            | Rule::NonPositiveSynthResistance
            | Rule::ConstraintOnUnknownNode
            | Rule::MalformedSynthCard
            | Rule::MissingBufferLibrary => Severity::Error,
            Rule::DuplicateLabel
            | Rule::LoadFreeLeaf
            | Rule::DuplicateInput
            | Rule::DegenerateSink
            | Rule::ZeroLoadNet
            | Rule::ImplausibleValue
            | Rule::UnderdampedSink
            | Rule::TooManyAggressors => Severity::Warning,
            Rule::DeepRcNet => Severity::Info,
        }
    }

    /// The analysis tier the rule belongs to.
    pub fn tier(self) -> Tier {
        match self {
            Rule::EmptyDeck
            | Rule::Cycle
            | Rule::Unreachable
            | Rule::NoInput
            | Rule::GroundedSeries
            | Rule::FloatingCapacitor
            | Rule::OrphanCapacitor
            | Rule::DuplicateLabel
            | Rule::LoadFreeLeaf
            | Rule::DuplicateInput => Tier::Structural,
            Rule::MalformedCard
            | Rule::BadValue
            | Rule::DegenerateSink
            | Rule::ZeroLoadNet
            | Rule::ImplausibleValue => Tier::Physical,
            Rule::UnderdampedSink | Rule::DeepRcNet => Tier::ModelRegime,
            Rule::UnreadableDeck => Tier::Io,
            Rule::UnknownCouplingNet
            | Rule::SelfCoupling
            | Rule::NonPositiveCouplingCap
            | Rule::DanglingCouplingNode
            | Rule::TooManyAggressors
            | Rule::DuplicateNet => Tier::Coupling,
            Rule::UnknownBufferRef
            | Rule::NonPositiveSynthResistance
            | Rule::ConstraintOnUnknownNode
            | Rule::MalformedSynthCard
            | Rule::MissingBufferLibrary => Tier::Synthesis,
        }
    }

    /// A one-line description for catalogs (`lint --rules`).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::EmptyDeck => "deck has no series elements",
            Rule::Cycle => "element graph contains a cycle",
            Rule::Unreachable => "element not reachable from the input",
            Rule::NoInput => "no usable input node",
            Rule::GroundedSeries => "series element connects to ground",
            Rule::FloatingCapacitor => "capacitor does not connect to ground",
            Rule::OrphanCapacitor => "capacitor on the input or an unknown node",
            Rule::DuplicateLabel => "card label reused",
            Rule::LoadFreeLeaf => "leaf node carries no capacitive load",
            Rule::DuplicateInput => "second .input overrides the first",
            Rule::MalformedCard => "card does not match <name> <node> <node> <value>",
            Rule::BadValue => "element value is non-finite or negative",
            Rule::DegenerateSink => "sink has T_RC = 0 (degenerate model)",
            Rule::ZeroLoadNet => "net has zero total capacitance",
            Rule::ImplausibleValue => "value outside plausible on-chip range",
            Rule::UnderdampedSink => "sink damping factor below the model-fidelity floor",
            Rule::DeepRcNet => "deep-RC net; first-order Elmore/Wyatt model suffices",
            Rule::UnreadableDeck => "deck file cannot be read",
            Rule::UnknownCouplingNet => "coupling references an undeclared net",
            Rule::SelfCoupling => "coupling joins a net to itself",
            Rule::NonPositiveCouplingCap => "coupling capacitor value not finite and positive",
            Rule::DanglingCouplingNode => "coupling references a node outside its net's tree",
            Rule::TooManyAggressors => "net coupled to more aggressors than the configured limit",
            Rule::DuplicateNet => "two .net blocks share a name",
            Rule::UnknownBufferRef => ".use selects a buffer no .lib defines",
            Rule::NonPositiveSynthResistance => "synthesis resistance not finite and positive",
            Rule::ConstraintOnUnknownNode => ".require names a nonexistent node",
            Rule::MalformedSynthCard => "synthesis card does not match its grammar",
            Rule::MissingBufferLibrary => "synthesis deck has no .lib buffer",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), Rule::ALL.len(), "duplicate code");
        assert_eq!(sorted, codes, "Rule::ALL must be in code order");
    }

    #[test]
    fn tiers_match_code_blocks() {
        for &rule in Rule::ALL {
            let block = &rule.code()[1..2];
            let expected = match rule.tier() {
                Tier::Structural => "0",
                Tier::Physical => "1",
                Tier::ModelRegime => "2",
                Tier::Io => "3",
                Tier::Coupling => "4",
                Tier::Synthesis => "5",
            };
            assert_eq!(
                block,
                expected,
                "{rule:?} code {} in wrong block",
                rule.code()
            );
        }
    }
}
