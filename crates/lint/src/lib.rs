//! Static analysis for RLC netlist decks.
//!
//! `rlc-lint` inspects a deck *without* simulating it and produces a
//! [`LintReport`]: a deterministic list of [`Diagnostic`]s with stable rule
//! codes (`L001`…), fixed severities, and source spans pointing at the
//! offending deck line. The rules come in four tiers (see [`Tier`]):
//!
//! * **structural** — the element graph must be a tree rooted at the input
//!   (cycles, unreachable elements, misplaced capacitors, missing loads);
//! * **physical** — element values must be finite, non-negative, and
//!   plausibly on-chip;
//! * **model-regime** — per-sink damping factors `ζ = T_RC/(2√T_LC)`
//!   (paper eq. 29) computed in O(n) via [`rlc_moments::tree_sums`], used
//!   to flag decks the two-pole model grades poorly on (ζ < 0.5) and
//!   deep-RC decks where a first-order model would do (`L202`);
//! * **coupling** — coupled-deck defects (`L4xx`): `K` cards naming
//!   unknown nets or nodes, self-coupling, non-positive coupling caps,
//!   duplicate `.net` names, and implausibly wide aggressor fan-in (see
//!   [`lint_coupled_deck`]);
//! * **synthesis** — synthesis-deck defects (`L5xx`): unknown buffer
//!   references, non-positive driver resistances, constraints on
//!   nonexistent sinks, malformed `.lib`/`.use`/`.driver`/`.require`
//!   cards (see [`lint_synth_deck`]).
//!
//! The contract downstream gates rely on: **a deck lints error-free iff
//! `Netlist::parse` accepts it** (for coupled decks: iff
//! `CoupledGroup::parse` accepts it; for synthesis decks: iff
//! `SynthDeck::parse` accepts it). Warnings and infos never block
//! parsing; errors always predict a parse failure. `rlc-serve` uses this
//! to reject work before it costs an admission slot, `rlc-engine` offers
//! it as a batch pre-check, and `rlc-verify` screens its generated corpus
//! with it.
//!
//! Reports render two ways: human `file:line: L00x severity: message`
//! lines, and the byte-stable `rlc-lint/1` JSON document (sorted decks,
//! sorted diagnostics, no timestamps) — see [`report::render_document`].
//!
//! # Examples
//!
//! ```
//! use rlc_lint::{lint_deck, Rule, Severity};
//!
//! // ζ ≈ 0.265 at the sink: analyzable, but flagged.
//! let deck = "R1 in n1 25\nC1 n1 0 0.5p\nL2 n1 n2 5n\nC2 n2 0 1p\n";
//! let report = lint_deck(deck);
//! assert!(report.is_clean());
//! assert_eq!(report.codes(), vec!["L201"]);
//! let finding = &report.diagnostics()[0];
//! assert_eq!(finding.rule, Rule::UnderdampedSink);
//! assert_eq!(finding.rule.severity(), Severity::Warning);
//! assert_eq!(finding.node.as_deref(), Some("n2"));
//! ```

mod analyze;
mod coupled;
mod report;
mod rules;
mod synth;

pub use analyze::{lint_deck, lint_deck_with, lint_path, lint_tree, lint_tree_with, LintConfig};
pub use coupled::{lint_coupled_deck, lint_coupled_deck_with, lint_coupled_group};
pub use report::{render_document, Diagnostic, LintReport};
pub use rules::{Rule, Severity, Tier};
pub use synth::{lint_synth_deck, lint_synth_deck_with};
