//! The parse-to-diagnostics pipeline.
//!
//! Linting runs in two stages:
//!
//! 1. **Scan** — a line-by-line pass over the deck text that mirrors
//!    `Netlist::parse`'s grammar but *collects* problems instead of
//!    stopping at the first one. Card-level findings carry the 1-based
//!    line number of the offending card. If the cards are individually
//!    well-formed, the same pass then checks the element graph (input
//!    node, cycles, reachability, capacitor placement) exactly the way
//!    `Netlist::assemble` would.
//! 2. **Model** — only when the scan found no errors (so the deck is in
//!    the parser's image), the deck is parsed and the eq. 29/30 tree sums
//!    are computed once in O(n) via [`rlc_moments::tree_sums`]. Per-sink
//!    damping factors `ζ = T_RC/(2√T_LC)` drive the model-regime rules;
//!    findings at this stage carry the original node names.
//!
//! The invariant linking the two stages: **a deck lints error-free if and
//! only if `Netlist::parse` accepts it** (warnings and infos never block
//! parsing). `tests/parser_agreement.rs` enforces this property.

use std::collections::BTreeMap;

use rlc_tree::netlist::Netlist;
use rlc_tree::{RlcTree, TreeError};
use rlc_units::{Capacitance, Inductance, QuantityErrorKind, Resistance};

use crate::report::{Diagnostic, LintReport};
use crate::rules::Rule;

/// Tunable thresholds for the physical and model-regime tiers.
///
/// The defaults encode the paper's applicability envelope: Section V bounds
/// the two-pole model's delay error at 25% across moderately damped
/// regimes, and the fit visibly decays once ζ drops below ~0.5 (strong
/// ringing); deep-RC nets with ζ ≥ 10 everywhere are first-order for all
/// practical purposes. The magnitude ranges are generous envelopes of
/// on-chip interconnect values (the paper's examples use Ω, nH, pF scales).
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Warn (`L201`) when a sink's ζ falls below this. Default `0.5`.
    pub zeta_warn_below: f64,
    /// Info (`L202`) when every sink's ζ is at or above this. Default `10.0`.
    pub zeta_info_above: f64,
    /// Plausible resistance magnitudes in Ω. Default `1e-3 ..= 1e5`.
    pub resistance_ohms: (f64, f64),
    /// Plausible inductance magnitudes in H. Default `1e-15 ..= 1e-6`.
    pub inductance_henries: (f64, f64),
    /// Plausible capacitance magnitudes in F. Default `1e-18 ..= 1e-9`.
    pub capacitance_farads: (f64, f64),
    /// Warn (`L405`) when a net of a coupled deck has more distinct
    /// aggressors than this. The decoupled Miller analysis compounds its
    /// per-aggressor pessimism, so wide fan-in windows deserve scrutiny.
    /// Default `8`.
    pub max_aggressors: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            zeta_warn_below: 0.5,
            zeta_info_above: 10.0,
            resistance_ohms: (1e-3, 1e5),
            inductance_henries: (1e-15, 1e-6),
            capacitance_farads: (1e-18, 1e-9),
            max_aggressors: 8,
        }
    }
}

/// Lints a deck with the default [`LintConfig`].
pub fn lint_deck(deck: &str) -> LintReport {
    lint_deck_with(deck, &LintConfig::default())
}

/// Lints a deck with an explicit configuration.
pub fn lint_deck_with(deck: &str, config: &LintConfig) -> LintReport {
    let _span = rlc_obs::span!("lint.deck");
    rlc_obs::counter!("lint.decks");
    let mut scan = Scan::run(deck, config);
    if scan
        .diagnostics
        .iter()
        .all(|d| d.rule.severity() != crate::Severity::Error)
    {
        match Netlist::parse(deck) {
            Ok(netlist) => {
                model_stage(&mut scan.diagnostics, &netlist, config);
            }
            Err(err) => {
                // The scanner's grammar should match the parser exactly;
                // if the parser still objects, surface its complaint as a
                // diagnostic rather than diverging from it.
                scan.diagnostics.push(parser_fallback(&err));
            }
        }
    }
    let report = LintReport::new(scan.diagnostics);
    rlc_obs::counter!("lint.diagnostics", report.diagnostics().len() as u64);
    report
}

/// Lints an in-memory tree (no deck text, so no line anchors) with the
/// default config: physical and model-regime tiers only, node findings
/// named by canonical index (`n0`, `n1`, …) as in
/// [`RlcTree::canonical_deck`].
pub fn lint_tree(tree: &RlcTree) -> LintReport {
    lint_tree_with(tree, &LintConfig::default())
}

/// Lints an in-memory tree with an explicit configuration.
pub fn lint_tree_with(tree: &RlcTree, config: &LintConfig) -> LintReport {
    let _span = rlc_obs::span!("lint.tree");
    let mut diagnostics = Vec::new();
    if tree.is_empty() {
        diagnostics.push(Diagnostic::deck(
            Rule::EmptyDeck,
            "tree has no sections".to_owned(),
        ));
        return LintReport::new(diagnostics);
    }
    let names: Vec<String> = tree
        .node_ids()
        .map(|id| format!("n{}", id.index()))
        .collect();
    tree_rules(&mut diagnostics, tree, &names, config);
    LintReport::new(diagnostics)
}

/// True when the deck uses the coupled-group grammar: any non-comment
/// line opening with a `.net` card. Mirrors what `CoupledGroup::parse`
/// would treat as a block declaration, so file-level routing agrees with
/// the parser the report predicts.
pub(crate) fn deck_is_coupled(deck: &str) -> bool {
    deck.lines().any(|line| {
        let line = line.trim();
        !line.starts_with('*')
            && line
                .split_whitespace()
                .next()
                .is_some_and(|card| card.eq_ignore_ascii_case(".net"))
    })
}

/// Reads and lints a deck file. An unreadable file yields a report with a
/// single [`Rule::UnreadableDeck`] error instead of an `io::Error`, so
/// batch callers can fold I/O problems into the same report stream.
/// Decks using the coupled-group grammar (`.net` blocks, see
/// [`crate::lint_coupled_deck`]) are routed to the coupled analyzer, and
/// decks carrying synthesis directives (`.lib`/`.use`/`.driver`/
/// `.require`, see [`crate::lint_synth_deck`]) to the synthesis analyzer,
/// so directory sweeps may mix single-net, coupled, and synthesis decks
/// freely.
pub fn lint_path(path: &std::path::Path, config: &LintConfig) -> LintReport {
    match std::fs::read_to_string(path) {
        Ok(deck) if deck_is_coupled(&deck) => crate::coupled::lint_coupled_deck_with(&deck, config),
        Ok(deck) if rlc_tree::synth::is_synth_deck(&deck) => {
            crate::synth::lint_synth_deck_with(&deck, config)
        }
        Ok(deck) => lint_deck_with(&deck, config),
        Err(err) => LintReport::new(vec![Diagnostic::deck(
            Rule::UnreadableDeck,
            format!("cannot read deck: {err}"),
        )]),
    }
}

/// Maps a residual parser error (stage-2 defence) onto the closest rule.
fn parser_fallback(err: &TreeError) -> Diagnostic {
    match err {
        TreeError::ParseNetlist { line, message } => {
            Diagnostic::line(Rule::MalformedCard, *line, message.clone())
        }
        other => Diagnostic::deck(Rule::Unreachable, other.to_string()),
    }
}

/// One series card that survived the value checks.
struct ScannedElement {
    label: String,
    a: String,
    b: String,
    line: usize,
}

/// One shunt-capacitor card that survived the value checks.
struct ScannedShunt {
    label: String,
    node: String,
    line: usize,
}

struct Scan {
    diagnostics: Vec<Diagnostic>,
}

impl Scan {
    fn run(deck: &str, config: &LintConfig) -> Scan {
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        let mut series: Vec<ScannedElement> = Vec::new();
        let mut shunts: Vec<ScannedShunt> = Vec::new();
        let mut input: Option<(String, usize)> = None;
        // label -> first defining line, insertion order irrelevant (lookup only).
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        let mut card_errors = false;

        for (lineno, raw) in deck.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let card = fields[0];
            let lower = card.to_ascii_lowercase();
            if lower == ".end" {
                break;
            }
            if lower == ".input" {
                match fields.get(1) {
                    Some(node) => {
                        if let Some((prev, prev_line)) = &input {
                            diagnostics.push(Diagnostic::line(
                                Rule::DuplicateInput,
                                lineno,
                                format!(
                                    ".input {node} overrides .input {prev} from line {prev_line}"
                                ),
                            ));
                        }
                        input = Some(((*node).to_owned(), lineno));
                    }
                    None => {
                        card_errors = true;
                        diagnostics.push(Diagnostic::line(
                            Rule::MalformedCard,
                            lineno,
                            ".input requires a node name".to_owned(),
                        ));
                    }
                }
                continue;
            }
            if lower.starts_with('.') {
                // Unknown directives are ignored, like `Netlist::parse`.
                continue;
            }
            let kind = card.chars().next().map(|c| c.to_ascii_uppercase());
            if !matches!(kind, Some('R') | Some('L') | Some('C')) {
                card_errors = true;
                diagnostics.push(Diagnostic::line(
                    Rule::MalformedCard,
                    lineno,
                    format!("unsupported card {card:?}"),
                ));
                continue;
            }
            if fields.len() != 4 {
                card_errors = true;
                diagnostics.push(Diagnostic::line(
                    Rule::MalformedCard,
                    lineno,
                    format!(
                        "expected `<name> <node> <node> <value>`, got {} fields",
                        fields.len()
                    ),
                ));
                continue;
            }
            if let Some(&first_line) = labels.get(card) {
                diagnostics.push(Diagnostic::line(
                    Rule::DuplicateLabel,
                    lineno,
                    format!("card label {card} already used on line {first_line}"),
                ));
            } else {
                labels.insert(card.to_owned(), lineno);
            }
            let (n1, n2, value) = (fields[1], fields[2], fields[3]);
            let value_ok = match kind {
                Some('R') => check_value::<Resistance>(
                    &mut diagnostics,
                    card,
                    value,
                    lineno,
                    "Ω",
                    config.resistance_ohms,
                    |r| r.as_ohms(),
                ),
                Some('L') => check_value::<Inductance>(
                    &mut diagnostics,
                    card,
                    value,
                    lineno,
                    "H",
                    config.inductance_henries,
                    |l| l.as_henries(),
                ),
                _ => check_value::<Capacitance>(
                    &mut diagnostics,
                    card,
                    value,
                    lineno,
                    "F",
                    config.capacitance_farads,
                    |c| c.as_farads(),
                ),
            };
            if !value_ok {
                card_errors = true;
                continue;
            }
            if matches!(kind, Some('R') | Some('L')) {
                if is_ground(n1) || is_ground(n2) {
                    card_errors = true;
                    diagnostics.push(Diagnostic::line(
                        Rule::GroundedSeries,
                        lineno,
                        format!("series element {card} may not connect to ground in a tree"),
                    ));
                    continue;
                }
                series.push(ScannedElement {
                    label: card.to_owned(),
                    a: n1.to_owned(),
                    b: n2.to_owned(),
                    line: lineno,
                });
            } else {
                let node = match (is_ground(n1), is_ground(n2)) {
                    (false, true) => n1,
                    (true, false) => n2,
                    _ => {
                        card_errors = true;
                        diagnostics.push(Diagnostic::line(
                            Rule::FloatingCapacitor,
                            lineno,
                            format!("capacitor {card} must connect a node to ground"),
                        ));
                        continue;
                    }
                };
                shunts.push(ScannedShunt {
                    label: card.to_owned(),
                    node: node.to_owned(),
                    line: lineno,
                });
            }
        }

        // Graph checks only make sense over a fully scanned card set: a
        // malformed card already fails the deck, and reporting the holes it
        // leaves in the graph would be cascade noise.
        if !card_errors {
            graph_stage(&mut diagnostics, &series, &shunts, input);
        }
        Scan { diagnostics }
    }
}

/// Parses and range-checks one element value, pushing diagnostics as
/// needed. Returns `false` when the card must be dropped from the graph
/// (syntax error, non-finite, or negative).
fn check_value<T: std::str::FromStr<Err = rlc_units::ParseQuantityError>>(
    diagnostics: &mut Vec<Diagnostic>,
    card: &str,
    raw: &str,
    line: usize,
    unit: &str,
    plausible: (f64, f64),
    base: impl Fn(T) -> f64,
) -> bool {
    let value = match raw.parse::<T>() {
        Ok(v) => base(v),
        Err(err) if err.kind() == QuantityErrorKind::NonFinite => {
            diagnostics.push(Diagnostic::line(
                Rule::BadValue,
                line,
                format!("element {card} value {raw:?} is not finite"),
            ));
            return false;
        }
        Err(_) if is_nan_spelling(raw) => {
            // "NaN" never parses as a number (the numeric head is empty),
            // but the author clearly meant a value, not a typo: file it as
            // a value error so fault classes map one-to-one onto codes.
            diagnostics.push(Diagnostic::line(
                Rule::BadValue,
                line,
                format!("element {card} value {raw:?} is not finite"),
            ));
            return false;
        }
        Err(err) => {
            diagnostics.push(Diagnostic::line(
                Rule::MalformedCard,
                line,
                format!("bad value {raw:?}: {err}"),
            ));
            return false;
        }
    };
    if !value.is_finite() || value < 0.0 {
        diagnostics.push(Diagnostic::line(
            Rule::BadValue,
            line,
            format!("element {card} value {raw:?} must be finite and non-negative"),
        ));
        return false;
    }
    let (lo, hi) = plausible;
    if value > 0.0 && !(lo..=hi).contains(&value) {
        diagnostics.push(Diagnostic::line(
            Rule::ImplausibleValue,
            line,
            format!(
                "element {card} value {value:e} {unit} is outside the plausible on-chip range [{lo:e}, {hi:e}] {unit}"
            ),
        ));
    }
    true
}

/// The spellings of a non-finite float literal that `f64`'s grammar would
/// accept but the quantity grammar rejects at the syntax stage.
pub(crate) fn is_nan_spelling(raw: &str) -> bool {
    let head = raw.trim().trim_start_matches(['-', '+']);
    let head = head.get(..3).unwrap_or(head);
    head.eq_ignore_ascii_case("nan") || head.eq_ignore_ascii_case("inf")
}

/// Structural checks over the scanned element graph, mirroring
/// `Netlist::assemble`: input resolution, DFS reachability, cycle
/// detection, capacitor placement.
fn graph_stage(
    diagnostics: &mut Vec<Diagnostic>,
    series: &[ScannedElement],
    shunts: &[ScannedShunt],
    input: Option<(String, usize)>,
) {
    if series.is_empty() {
        diagnostics.push(Diagnostic::deck(
            Rule::EmptyDeck,
            "netlist has no series elements".to_owned(),
        ));
        return;
    }
    let mut adj: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, el) in series.iter().enumerate() {
        adj.entry(&el.a).or_default().push(idx);
        adj.entry(&el.b).or_default().push(idx);
    }
    let input_name = match &input {
        Some((name, line)) => {
            if !adj.contains_key(name.as_str()) {
                diagnostics.push(Diagnostic::line(
                    Rule::NoInput,
                    *line,
                    format!("input node {name:?} does not appear in any series element"),
                ));
                return;
            }
            name.clone()
        }
        None if adj.contains_key("in") => "in".to_owned(),
        None => {
            diagnostics.push(Diagnostic::deck(
                Rule::NoInput,
                "no .input directive and no node named \"in\"".to_owned(),
            ));
            return;
        }
    };

    // DFS in the exact order `Netlist::assemble` uses, so the first cycle
    // reported here is the one the parser would report.
    let mut used = vec![false; series.len()];
    let mut visited: BTreeMap<&str, ()> = BTreeMap::new();
    visited.insert(input_name.as_str(), ());
    let mut stack: Vec<&str> = vec![input_name.as_str()];
    while let Some(node) = stack.pop() {
        for &edge in adj.get(node).into_iter().flatten() {
            if used[edge] {
                continue;
            }
            used[edge] = true;
            let el = &series[edge];
            let far: &str = if el.a == node { &el.b } else { &el.a };
            if visited.contains_key(far) {
                diagnostics.push(Diagnostic::line(
                    Rule::Cycle,
                    el.line,
                    format!("element {} closes a cycle through node {far:?}", el.label),
                ));
                continue;
            }
            visited.insert(far, ());
            stack.push(far);
        }
    }
    for (idx, el) in series.iter().enumerate() {
        if !used[idx] {
            diagnostics.push(Diagnostic::line(
                Rule::Unreachable,
                el.line,
                format!(
                    "element {} between {:?} and {:?} is not reachable from the input",
                    el.label, el.a, el.b
                ),
            ));
        }
    }
    for shunt in shunts {
        if shunt.node == input_name || !visited.contains_key(shunt.node.as_str()) {
            diagnostics.push(Diagnostic::line(
                Rule::OrphanCapacitor,
                shunt.line,
                format!(
                    "capacitor {} at node {:?} which is the input or not in the tree",
                    shunt.label, shunt.node
                ),
            ));
        }
    }
}

/// Physical and model-regime rules over the parsed tree, with findings
/// anchored to the original node names.
fn model_stage(diagnostics: &mut Vec<Diagnostic>, netlist: &Netlist, config: &LintConfig) {
    let tree = netlist.tree();
    let mut names: Vec<String> = tree
        .node_ids()
        .map(|id| format!("n{}", id.index()))
        .collect();
    for (name, id) in netlist.nodes() {
        names[id.index()] = name.to_owned();
    }
    tree_rules(diagnostics, tree, &names, config);
}

/// The shared tier-2/tier-3 rules: run for parsed decks and bare trees.
///
/// `names[i]` is the display name of the node with arena index `i`.
fn tree_rules(
    diagnostics: &mut Vec<Diagnostic>,
    tree: &RlcTree,
    names: &[String],
    config: &LintConfig,
) {
    if tree.total_capacitance().as_farads() == 0.0 {
        diagnostics.push(Diagnostic::deck(
            Rule::ZeroLoadNet,
            "net has zero total capacitance; every T_RC and T_LC sum is zero".to_owned(),
        ));
        // Every per-sink quantity is zero too: the individual sink
        // diagnostics would just repeat this one n times.
        return;
    }
    for id in tree.node_ids() {
        if tree.is_leaf(id) && tree.section(id).capacitance().as_farads() == 0.0 {
            diagnostics.push(Diagnostic::node(
                Rule::LoadFreeLeaf,
                names[id.index()].clone(),
                format!(
                    "leaf node {:?} carries no capacitive load and contributes nothing to any Elmore sum",
                    names[id.index()]
                ),
            ));
        }
    }
    let sums = rlc_moments::tree_sums(tree);
    let mut min_zeta = f64::INFINITY;
    let mut all_rc = true;
    let mut sinks = 0usize;
    for leaf in tree.leaves() {
        sinks += 1;
        let t_rc = sums.rc(leaf).as_seconds();
        let t_lc = sums.lc(leaf).as_seconds_squared();
        if t_rc == 0.0 {
            diagnostics.push(Diagnostic::node(
                Rule::DegenerateSink,
                names[leaf.index()].clone(),
                format!(
                    "sink node {:?} has T_RC = 0; the second-order model (eq. 29) is degenerate there",
                    names[leaf.index()]
                ),
            ));
            continue;
        }
        if t_lc == 0.0 {
            continue;
        }
        all_rc = false;
        // Paper eq. 29: ζ = T_RC / (2·√T_LC).
        let zeta = t_rc / (2.0 * t_lc.sqrt());
        min_zeta = min_zeta.min(zeta);
        if zeta < config.zeta_warn_below {
            diagnostics.push(Diagnostic::node(
                Rule::UnderdampedSink,
                names[leaf.index()].clone(),
                format!(
                    "sink node {:?} has ζ = {zeta:.3} < {:.2}; the two-pole model's fidelity decays for strongly underdamped responses (paper Section V)",
                    names[leaf.index()],
                    config.zeta_warn_below
                ),
            ));
        }
    }
    if sinks > 0 && all_rc {
        diagnostics.push(Diagnostic::deck(
            Rule::DeepRcNet,
            "net is purely RC (T_LC = 0 at every sink); the first-order Elmore/Wyatt model suffices"
                .to_owned(),
        ));
    } else if min_zeta.is_finite() && min_zeta >= config.zeta_info_above {
        diagnostics.push(Diagnostic::deck(
            Rule::DeepRcNet,
            format!(
                "net is deeply overdamped (min sink ζ = {min_zeta:.3} ≥ {:.1}); the first-order Elmore/Wyatt model suffices",
                config.zeta_info_above
            ),
        ));
    }
}

fn is_ground(node: &str) -> bool {
    node == "0" || node.eq_ignore_ascii_case("gnd")
}
