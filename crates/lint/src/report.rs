//! Diagnostics, reports, and the two renderers (human and `rlc-lint/1`).

use std::fmt::Write as _;

use rlc_obs::json;

use crate::rules::{Rule, Severity};

/// One finding: a rule instance anchored to a deck line and/or a node.
///
/// Line numbers are 1-based and point into the *original* deck text the
/// analyzer saw. Diagnostics produced from an in-memory tree (no deck text)
/// carry a node name instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// 1-based deck line, when the finding is anchored to a card.
    pub line: Option<usize>,
    /// Netlist node name, when the finding is anchored to a node.
    pub node: Option<String>,
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn line(rule: Rule, line: usize, message: String) -> Self {
        Self {
            rule,
            line: Some(line),
            node: None,
            message,
        }
    }

    pub(crate) fn node(rule: Rule, node: impl Into<String>, message: String) -> Self {
        Self {
            rule,
            line: None,
            node: Some(node.into()),
            message,
        }
    }

    pub(crate) fn deck(rule: Rule, message: String) -> Self {
        Self {
            rule,
            line: None,
            node: None,
            message,
        }
    }

    /// The deterministic ordering key: line-anchored findings first in line
    /// order, then deck/node-level findings by code.
    fn sort_key(&self) -> (usize, &'static str, &str, &str) {
        (
            self.line.unwrap_or(usize::MAX),
            self.rule.code(),
            self.node.as_deref().unwrap_or(""),
            &self.message,
        )
    }

    /// Renders this diagnostic as a single-line JSON object.
    fn to_json(&self) -> String {
        let line = match self.line {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        };
        let node = match &self.node {
            Some(n) => json::quote(n),
            None => "null".to_owned(),
        };
        format!(
            "{{\"code\": {}, \"severity\": {}, \"line\": {}, \"node\": {}, \"message\": {}}}",
            json::quote(self.rule.code()),
            json::quote(self.rule.severity().as_str()),
            line,
            node,
            json::quote(&self.message),
        )
    }
}

/// The outcome of linting one deck: diagnostics in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report, sorting the diagnostics into the canonical order
    /// (line ascending with unanchored findings last, then code, node,
    /// message). Every renderer and every consumer sees this order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Self { diagnostics }
    }

    /// The findings, in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.rule.severity() == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// No findings at all, of any severity.
    pub fn is_spotless(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// No error-severity findings: the deck will parse and analyze.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Gate verdict: clean, and warning-free when `deny_warnings` is set.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        self.is_clean() && !(deny_warnings && self.warnings() > 0)
    }

    /// Sorted, deduplicated codes of every finding.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.rule.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// The most severe finding, ties broken by canonical order. This is the
    /// finding a gate (e.g. `rlc-serve`'s `lint=deny`) cites when rejecting.
    pub fn primary(&self) -> Option<&Diagnostic> {
        self.diagnostics.iter().max_by(|a, b| {
            (a.rule.severity(), std::cmp::Reverse(a.sort_key()))
                .cmp(&(b.rule.severity(), std::cmp::Reverse(b.sort_key())))
        })
    }

    /// Human rendering: one `label:line: L00x severity: message` line per
    /// finding (the line segment is omitted for unanchored findings).
    pub fn render_human(&self, label: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.line {
                Some(line) => {
                    let _ = writeln!(
                        out,
                        "{label}:{line}: {} {}: {}",
                        d.rule.code(),
                        d.rule.severity(),
                        d.message
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{label}: {} {}: {}",
                        d.rule.code(),
                        d.rule.severity(),
                        d.message
                    );
                }
            }
        }
        out
    }

    /// The per-deck `rlc-lint/1` JSON object, on a single line:
    ///
    /// ```json
    /// {"deck": "...", "diagnostics": [...], "summary": {...}}
    /// ```
    pub fn to_json_object(&self, label: &str) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"deck\": {}, \"diagnostics\": [{}], \"summary\": {}}}",
            json::quote(label),
            diags.join(", "),
            self.summary_json(),
        )
    }

    /// The severity tally as a JSON object:
    /// `{"errors": E, "warnings": W, "infos": I}`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"errors\": {}, \"warnings\": {}, \"infos\": {}}}",
            self.errors(),
            self.warnings(),
            self.infos()
        )
    }

    /// A compact gate-annotation object for embedding in other protocols
    /// (used by `rlc-serve` to attach lint results to `analyze` responses):
    /// `{"errors": E, "warnings": W, "infos": I, "codes": ["L201", ...]}`.
    pub fn annotation_json(&self) -> String {
        let codes: Vec<String> = self.codes().iter().map(|c| json::quote(c)).collect();
        format!(
            "{{\"errors\": {}, \"warnings\": {}, \"infos\": {}, \"codes\": [{}]}}",
            self.errors(),
            self.warnings(),
            self.infos(),
            codes.join(", ")
        )
    }
}

/// Renders the top-level `rlc-lint/1` document over several labelled
/// reports. Decks appear in the order given (the CLI sorts labels first),
/// one JSON object per line, so the document is byte-stable:
///
/// ```json
/// {
///   "schema": "rlc-lint/1",
///   "decks": [
///     {"deck": "...", "diagnostics": [...], "summary": {...}}
///   ],
///   "summary": {"decks": 1, "errors": 0, "warnings": 0, "infos": 0, "clean": true}
/// }
/// ```
pub fn render_document(reports: &[(String, LintReport)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"rlc-lint/1\",\n  \"decks\": [\n");
    for (i, (label, report)) in reports.iter().enumerate() {
        let sep = if i + 1 == reports.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{}", report.to_json_object(label), sep);
    }
    let errors: usize = reports.iter().map(|(_, r)| r.errors()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warnings()).sum();
    let infos: usize = reports.iter().map(|(_, r)| r.infos()).sum();
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"decks\": {}, \"errors\": {}, \"warnings\": {}, \"infos\": {}, \"clean\": {}}}\n}}\n",
        reports.len(),
        errors,
        warnings,
        infos,
        errors == 0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport::new(vec![
            Diagnostic::node(Rule::UnderdampedSink, "n2", "ζ low".into()),
            Diagnostic::line(Rule::MalformedCard, 3, "bad card".into()),
            Diagnostic::line(Rule::BadValue, 1, "bad value".into()),
        ])
    }

    #[test]
    fn diagnostics_sort_line_first_then_unanchored() {
        let r = sample();
        let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.rule.code()).collect();
        assert_eq!(codes, vec!["L102", "L101", "L201"]);
    }

    #[test]
    fn counts_and_verdicts() {
        let r = sample();
        assert_eq!((r.errors(), r.warnings(), r.infos()), (2, 1, 0));
        assert!(!r.is_clean());
        let warn_only = LintReport::new(vec![Diagnostic::node(
            Rule::UnderdampedSink,
            "n2",
            "ζ low".into(),
        )]);
        assert!(warn_only.is_clean());
        assert!(warn_only.passes(false));
        assert!(!warn_only.passes(true));
        assert!(LintReport::default().passes(true));
    }

    #[test]
    fn primary_is_most_severe_then_first_in_order() {
        let r = sample();
        let primary = r.primary().expect("has findings");
        assert_eq!(primary.rule, Rule::BadValue);
        assert_eq!(primary.line, Some(1));
    }

    #[test]
    fn human_rendering_includes_line_spans() {
        let text = sample().render_human("deck.sp");
        assert!(text.contains("deck.sp:1: L102 error: bad value"), "{text}");
        assert!(text.contains("deck.sp:3: L101 error: bad card"), "{text}");
        assert!(text.contains("deck.sp: L201 warning: ζ low"), "{text}");
    }

    #[test]
    fn json_object_is_single_line_and_parses() {
        let obj = sample().to_json_object("deck.sp");
        assert!(!obj.contains('\n'));
        rlc_obs::json::parse(&obj).expect("valid JSON");
        assert!(obj.contains("\"code\": \"L102\""), "{obj}");
    }

    #[test]
    fn document_parses_and_totals() {
        let doc = render_document(&[
            ("a.sp".to_owned(), sample()),
            ("b.sp".to_owned(), LintReport::default()),
        ]);
        rlc_obs::json::parse(&doc).expect("valid JSON document");
        assert!(doc.contains("\"schema\": \"rlc-lint/1\""), "{doc}");
        assert!(doc.contains("\"decks\": 2"), "{doc}");
        assert!(doc.contains("\"clean\": false"), "{doc}");
    }

    #[test]
    fn annotation_lists_sorted_unique_codes() {
        let ann = sample().annotation_json();
        assert_eq!(
            ann,
            "{\"errors\": 2, \"warnings\": 1, \"infos\": 0, \"codes\": [\"L101\", \"L102\", \"L201\"]}"
        );
    }
}
