//! Static analysis for *coupled* decks (see [`rlc_tree::coupled`]).
//!
//! The coupled linter extends the single-net pipeline in two directions:
//!
//! 1. **Group scan** — a line pass that mirrors `CoupledGroup::parse`'s
//!    grammar: `.net` block declarations, group-level `K` coupling cards,
//!    and the rule that ordinary cards may not appear before the first
//!    block. Problems are collected instead of stopping at the first one.
//! 2. **Per-net reuse** — each net's chunk (its owned lines, blank-padded
//!    so diagnostics keep original deck line numbers) runs through the
//!    full single-net linter; node-anchored findings come back prefixed
//!    `net.node`, and unanchored per-net findings are anchored to the net
//!    name.
//!
//! Coupling references are then resolved against the declared nets
//! (`L401` unknown net, `L402` self-coupling, `L404` dangling node), and
//! per-net aggressor fan-in is tallied against
//! [`LintConfig::max_aggressors`] (`L405`, warning).
//!
//! The single-net agreement invariant extends verbatim: **a coupled deck
//! lints error-free iff [`CoupledGroup::parse`] accepts it** — enforced by
//! the coupled cases in `tests/parser_agreement.rs`.

use std::collections::BTreeMap;

use rlc_tree::coupled::CoupledGroup;
use rlc_tree::netlist::Netlist;
use rlc_units::Capacitance;

use crate::analyze::{is_nan_spelling, lint_deck_with, LintConfig};
use crate::report::{Diagnostic, LintReport};
use crate::rules::Rule;

/// Lints a coupled deck with the default [`LintConfig`].
pub fn lint_coupled_deck(deck: &str) -> LintReport {
    lint_coupled_deck_with(deck, &LintConfig::default())
}

/// One `.net` declaration; `name` is `None` for malformed declarations
/// (kept so subsequent cards still have an owner and do not cascade into
/// bogus "before any .net" findings).
struct NetDecl {
    name: Option<String>,
}

/// One `K` card whose syntax and value survived the card checks.
struct ScannedCoupling {
    line: usize,
    card: String,
    ref_a: String,
    ref_b: String,
}

/// Lints a coupled deck with an explicit configuration.
pub fn lint_coupled_deck_with(deck: &str, config: &LintConfig) -> LintReport {
    let _span = rlc_obs::span!("lint.coupled_deck");
    rlc_obs::counter!("lint.coupled_decks");
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let lines: Vec<&str> = deck.lines().collect();
    // Which declared net (by index) owns each deck line; None = group-level.
    let mut owner: Vec<Option<usize>> = vec![None; lines.len()];
    let mut decls: Vec<NetDecl> = Vec::new();
    let mut couplings: Vec<ScannedCoupling> = Vec::new();
    let mut current: Option<usize> = None;

    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let card = fields[0];
        let lower = card.to_ascii_lowercase();
        if lower == ".end" {
            break;
        }
        if lower == ".net" {
            let name = scan_net_card(&mut diagnostics, &decls, &fields, lineno);
            decls.push(NetDecl { name });
            current = Some(decls.len() - 1);
            continue;
        }
        if card.chars().next().map(|c| c.to_ascii_uppercase()) == Some('K')
            && !lower.starts_with('.')
        {
            if let Some(scanned) = scan_coupling_card(&mut diagnostics, card, &fields, lineno) {
                couplings.push(scanned);
            }
            continue;
        }
        match current {
            Some(net) => owner[idx] = Some(net),
            None => diagnostics.push(Diagnostic::line(
                Rule::MalformedCard,
                lineno,
                format!("card {card:?} appears before any .net block"),
            )),
        }
    }

    if decls.is_empty() {
        diagnostics.push(Diagnostic::deck(
            Rule::EmptyDeck,
            "coupled deck has no .net blocks".to_owned(),
        ));
    }

    // Each net's chunk goes through the full single-net linter; the parsed
    // netlists double as the node-resolution context for `K` references.
    // For duplicate names only the first declaration resolves, mirroring
    // nothing in the parser (which rejects duplicates outright) but keeping
    // the lint pass total.
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    let mut netlists: Vec<Option<Netlist>> = Vec::with_capacity(decls.len());
    for (net_idx, decl) in decls.iter().enumerate() {
        let mut chunk = String::with_capacity(deck.len());
        for (idx, raw) in lines.iter().enumerate() {
            if owner[idx] == Some(net_idx) {
                chunk.push_str(raw);
            }
            chunk.push('\n');
        }
        let label = match &decl.name {
            Some(name) => {
                index.entry(name.as_str()).or_insert(net_idx);
                name.clone()
            }
            None => format!("net#{}", net_idx + 1),
        };
        for d in lint_deck_with(&chunk, config).diagnostics() {
            let mut d = d.clone();
            match &d.node {
                Some(node) => d.node = Some(format!("{label}.{node}")),
                None if d.line.is_none() => d.node = Some(label.clone()),
                None => {}
            }
            diagnostics.push(d);
        }
        netlists.push(Netlist::parse(&chunk).ok());
    }

    // Coupling-reference resolution (L401/L402/L404) and aggressor tally.
    let mut partners: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for c in &couplings {
        let a = resolve_end(&mut diagnostics, &index, &netlists, c, &c.ref_a);
        let b = resolve_end(&mut diagnostics, &index, &netlists, c, &c.ref_b);
        let (Some(a), Some(b)) = (a, b) else {
            continue;
        };
        if a == b {
            diagnostics.push(Diagnostic::line(
                Rule::SelfCoupling,
                c.line,
                format!(
                    "coupling {} joins net {:?} to itself",
                    c.card,
                    decls[a].name.as_deref().unwrap_or("?")
                ),
            ));
            continue;
        }
        for (this, far) in [(a, b), (b, a)] {
            let list = partners.entry(this).or_default();
            if !list.contains(&far) {
                list.push(far);
            }
        }
    }
    for (net_idx, decl) in decls.iter().enumerate() {
        let Some(name) = &decl.name else { continue };
        let aggressors = partners.get(&net_idx).map_or(0, Vec::len);
        if aggressors > config.max_aggressors {
            diagnostics.push(Diagnostic::node(
                Rule::TooManyAggressors,
                name.clone(),
                format!(
                    "net {name:?} is coupled to {aggressors} distinct aggressors \
                     (limit {}); the decoupled Miller window compounds pessimism \
                     per aggressor",
                    config.max_aggressors
                ),
            ));
        }
    }

    let report = LintReport::new(diagnostics);
    rlc_obs::counter!("lint.diagnostics", report.diagnostics().len() as u64);
    report
}

/// Validates one `.net` card, mirroring `CoupledGroup::parse`; returns the
/// declared name when usable.
fn scan_net_card(
    diagnostics: &mut Vec<Diagnostic>,
    decls: &[NetDecl],
    fields: &[&str],
    lineno: usize,
) -> Option<String> {
    let Some(name) = fields.get(1) else {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedCard,
            lineno,
            ".net requires a net name".to_owned(),
        ));
        return None;
    };
    if fields.len() > 2 {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedCard,
            lineno,
            format!(".net takes one name, got {} fields", fields.len() - 1),
        ));
        return None;
    }
    if name.contains('.') {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedCard,
            lineno,
            format!("net name {name:?} may not contain '.'"),
        ));
        return None;
    }
    if decls.iter().any(|d| d.name.as_deref() == Some(name)) {
        diagnostics.push(Diagnostic::line(
            Rule::DuplicateNet,
            lineno,
            format!("a .net block named {name:?} was already declared"),
        ));
        // Keep the name: its cards still belong to *a* block, and the
        // parser error is already recorded.
    }
    Some((*name).to_owned())
}

/// Validates one `K` card's shape and value, mirroring
/// `CoupledGroup::parse`; returns the card for reference resolution when
/// its syntax and value are usable.
fn scan_coupling_card(
    diagnostics: &mut Vec<Diagnostic>,
    card: &str,
    fields: &[&str],
    lineno: usize,
) -> Option<ScannedCoupling> {
    if fields.len() != 4 {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedCard,
            lineno,
            format!(
                "expected `K<label> <net>.<node> <net>.<node> <value>`, got {} fields",
                fields.len()
            ),
        ));
        return None;
    }
    let mut refs_ok = true;
    for reference in [fields[1], fields[2]] {
        if !reference.contains('.') {
            diagnostics.push(Diagnostic::line(
                Rule::MalformedCard,
                lineno,
                format!("coupling reference {reference:?} must be `<net>.<node>`"),
            ));
            refs_ok = false;
        }
    }
    let value = fields[3];
    let value_ok = match value.parse::<Capacitance>() {
        Ok(c) if c.as_farads().is_finite() && c.as_farads() > 0.0 => true,
        Ok(_) => {
            diagnostics.push(Diagnostic::line(
                Rule::NonPositiveCouplingCap,
                lineno,
                format!("coupling capacitor {card} value {value:?} must be finite and positive"),
            ));
            false
        }
        Err(err)
            if err.kind() == rlc_units::QuantityErrorKind::NonFinite || is_nan_spelling(value) =>
        {
            diagnostics.push(Diagnostic::line(
                Rule::NonPositiveCouplingCap,
                lineno,
                format!("coupling capacitor {card} value {value:?} is not finite"),
            ));
            false
        }
        Err(err) => {
            diagnostics.push(Diagnostic::line(
                Rule::MalformedCard,
                lineno,
                format!("bad value {value:?}: {err}"),
            ));
            false
        }
    };
    (refs_ok && value_ok).then(|| ScannedCoupling {
        line: lineno,
        card: card.to_owned(),
        ref_a: fields[1].to_owned(),
        ref_b: fields[2].to_owned(),
    })
}

/// Resolves one `<net>.<node>` reference, pushing `L401`/`L404` findings.
/// Returns the net index when the far side is at least net-resolvable, so
/// self-coupling and fan-in checks can proceed; node resolution is skipped
/// (without complaint) for nets whose own chunk failed to parse — the
/// chunk's findings already fail the deck.
fn resolve_end(
    diagnostics: &mut Vec<Diagnostic>,
    index: &BTreeMap<&str, usize>,
    netlists: &[Option<Netlist>],
    c: &ScannedCoupling,
    reference: &str,
) -> Option<usize> {
    let (net_name, node_name) = reference.split_once('.').unwrap_or((reference, ""));
    let Some(&net) = index.get(net_name) else {
        diagnostics.push(Diagnostic::line(
            Rule::UnknownCouplingNet,
            c.line,
            format!("coupling {} references unknown net {net_name:?}", c.card),
        ));
        return None;
    };
    if let Some(netlist) = &netlists[net] {
        if netlist.node(node_name).is_none() {
            diagnostics.push(Diagnostic::line(
                Rule::DanglingCouplingNode,
                c.line,
                format!(
                    "coupling {} references node {node_name:?} which is not a \
                     section node of net {net_name:?}",
                    c.card
                ),
            ));
        }
    }
    Some(net)
}

/// Lints an in-memory group via its canonical deck, so batch pre-checks
/// over already-parsed groups share one code path with deck linting. A
/// parsed group is by construction in the parser's image, so the report is
/// always error-free; warnings (fan-in, model regime) still apply.
pub fn lint_coupled_group(group: &CoupledGroup) -> LintReport {
    lint_coupled_deck(&group.canonical_deck())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    const CLEAN: &str = "\
.net victim
R1 in n1 25
L1 n1 n2 2n
C1 n2 0 0.5p
.net agg
R1 in m1 40
C1 m1 0 0.3p
K1 victim.n2 agg.m1 0.1p
.end
";

    #[test]
    fn clean_coupled_deck_is_clean() {
        let report = lint_coupled_deck(CLEAN);
        assert!(report.is_clean(), "{report:?}");
        assert!(CoupledGroup::parse(CLEAN).is_ok());
    }

    #[test]
    fn unknown_net_fires_l401() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\nK1 a.n1 ghost.n1 0.1p\n";
        let report = lint_coupled_deck(deck);
        assert!(report.codes().contains(&"L401"), "{report:?}");
        assert!(!report.is_clean());
        assert!(CoupledGroup::parse(deck).is_err());
    }

    #[test]
    fn self_coupling_fires_l402() {
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
R2 n1 n2 10
C2 n2 0 1p
K1 a.n1 a.n2 0.1p
";
        let report = lint_coupled_deck(deck);
        assert!(report.codes().contains(&"L402"), "{report:?}");
        assert!(CoupledGroup::parse(deck).is_err());
    }

    #[test]
    fn non_positive_coupling_caps_fire_l403() {
        for value in ["0", "-0.1p", "1e999", "NaN"] {
            let deck = format!(
                ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net b\nR1 in m1 20\nC1 m1 0 1p\nK1 a.n1 b.m1 {value}\n"
            );
            let report = lint_coupled_deck(&deck);
            assert!(
                report.codes().contains(&"L403"),
                "value {value:?}: {report:?}"
            );
            assert!(CoupledGroup::parse(&deck).is_err());
        }
    }

    #[test]
    fn dangling_node_and_input_refs_fire_l404() {
        for node in ["n9", "in"] {
            let deck = format!(
                ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net b\nR1 in m1 20\nC1 m1 0 1p\nK1 a.{node} b.m1 0.1p\n"
            );
            let report = lint_coupled_deck(&deck);
            assert!(report.codes().contains(&"L404"), "{node}: {report:?}");
            assert!(CoupledGroup::parse(&deck).is_err());
        }
    }

    #[test]
    fn wide_fan_in_warns_l405_without_blocking() {
        let mut deck = String::from(".net victim\nR1 in n1 10\nC1 n1 0 1p\n");
        for i in 0..3 {
            deck.push_str(&format!(".net agg{i}\nR1 in m1 10\nC1 m1 0 1p\n"));
            deck.push_str(&format!("K{i} victim.n1 agg{i}.m1 0.05p\n"));
        }
        let tight = LintConfig {
            max_aggressors: 2,
            ..LintConfig::default()
        };
        let report = lint_coupled_deck_with(&deck, &tight);
        assert!(report.codes().contains(&"L405"), "{report:?}");
        assert!(report.is_clean(), "L405 is a warning: {report:?}");
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::TooManyAggressors)
            .expect("has the finding");
        assert_eq!(diag.rule.severity(), Severity::Warning);
        assert_eq!(diag.node.as_deref(), Some("victim"));
        assert!(CoupledGroup::parse(&deck).is_ok());
        // The default limit (8) leaves the same deck spotless of L405.
        assert!(!lint_coupled_deck(&deck).codes().contains(&"L405"));
    }

    #[test]
    fn duplicate_net_fires_l406() {
        let deck = ".net a\nR1 in n1 10\nC1 n1 0 1p\n.net a\nR1 in n1 10\nC1 n1 0 1p\n";
        let report = lint_coupled_deck(deck);
        assert!(report.codes().contains(&"L406"), "{report:?}");
        assert!(CoupledGroup::parse(deck).is_err());
    }

    #[test]
    fn card_before_net_and_malformed_blocks_are_errors() {
        let report = lint_coupled_deck("R1 in n1 10\n.net a\nR1 in n1 10\nC1 n1 0 1p\n");
        assert!(report.codes().contains(&"L101"), "{report:?}");
        for deck in [
            ".net\nR1 in n1 10\n",
            ".net a b\nR1 in n1 10\n",
            ".net a.b\nR1 in n1 10\n",
        ] {
            let report = lint_coupled_deck(deck);
            assert!(!report.is_clean(), "{deck:?}: {report:?}");
            assert!(CoupledGroup::parse(deck).is_err());
        }
    }

    #[test]
    fn per_net_findings_carry_net_prefixed_anchors_and_deck_lines() {
        // Line 5 is the bad card; the ζ warning anchors to agg's sink.
        let deck = "\
.net a
R1 in n1 10
C1 n1 0 1p
.net b
R1 in m1 bogus
C1 m1 0 1p
";
        let report = lint_coupled_deck(deck);
        let bad = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::MalformedCard)
            .expect("chunk error surfaces");
        assert_eq!(bad.line, Some(5));
        assert!(CoupledGroup::parse(deck).is_err());

        let underdamped = "\
.net a
R1 in n1 25
C1 n1 0 0.5p
L2 n1 n2 5n
C2 n2 0 1p
";
        let report = lint_coupled_deck(underdamped);
        assert!(report.is_clean());
        let finding = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::UnderdampedSink)
            .expect("model tier runs per net");
        assert_eq!(finding.node.as_deref(), Some("a.n2"));
    }

    #[test]
    fn empty_coupled_deck_fires_l001() {
        let report = lint_coupled_deck("* nothing\n");
        assert_eq!(report.codes(), vec!["L001"]);
        assert!(CoupledGroup::parse("* nothing\n").is_err());
    }

    #[test]
    fn parsed_group_lints_error_free() {
        let group = CoupledGroup::parse(CLEAN).expect("parses");
        let report = lint_coupled_group(&group);
        assert!(report.is_clean(), "{report:?}");
    }
}
