//! Static analysis for *synthesis* decks (see [`rlc_tree::synth`]).
//!
//! The synthesis linter runs the full single-net pipeline over the deck
//! (synthesis directives are unknown cards to the plain grammar, so the
//! element portion lints unchanged) and then mirrors
//! [`SynthDeck::parse`]'s card grammar in a collecting pass: every
//! malformed `.lib`/`.use`/`.driver`/`.require` card is reported instead
//! of stopping at the first, buffer references are resolved against the
//! scanned library (`L501`), resistances are checked positive (`L502`),
//! and `.require` nodes are resolved against the parsed netlist
//! (`L503`).
//!
//! The agreement invariant extends verbatim: **a synthesis deck lints
//! error-free iff [`SynthDeck::parse`] accepts it** — enforced by the
//! synthesis cases in `tests/parser_agreement.rs`.

use rlc_tree::netlist::Netlist;
use rlc_units::{Capacitance, Resistance, Time};

use crate::analyze::{is_nan_spelling, lint_deck_with, LintConfig};
use crate::report::{Diagnostic, LintReport};
use crate::rules::Rule;

/// Lints a synthesis deck with the default [`LintConfig`].
pub fn lint_synth_deck(deck: &str) -> LintReport {
    lint_synth_deck_with(deck, &LintConfig::default())
}

/// Lints a synthesis deck with an explicit configuration.
pub fn lint_synth_deck_with(deck: &str, config: &LintConfig) -> LintReport {
    let _span = rlc_obs::span!("lint.synth_deck");
    rlc_obs::counter!("lint.synth_decks");
    let mut diagnostics: Vec<Diagnostic> = lint_deck_with(deck, config).diagnostics().to_vec();

    let mut lib_names: Vec<String> = Vec::new();
    let mut use_cards: Vec<(usize, String)> = Vec::new();
    let mut saw_driver = false;
    let mut requires: Vec<(usize, String)> = Vec::new();

    for (idx, raw) in deck.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let lower = fields[0].to_ascii_lowercase();
        if lower == ".end" {
            break;
        }
        match lower.as_str() {
            ".lib" => scan_lib_card(&mut diagnostics, &mut lib_names, &fields, lineno),
            ".use" => {
                if fields.len() != 2 {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        format!(
                            ".use expects a buffer name, got {} fields",
                            fields.len() - 1
                        ),
                    ));
                    continue;
                }
                if !use_cards.is_empty() {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        "duplicate .use card".to_owned(),
                    ));
                }
                use_cards.push((lineno, fields[1].to_owned()));
            }
            ".driver" => {
                if fields.len() != 2 {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        format!(
                            ".driver expects a resistance, got {} fields",
                            fields.len() - 1
                        ),
                    ));
                    continue;
                }
                if saw_driver {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        "duplicate .driver card".to_owned(),
                    ));
                }
                saw_driver = true;
                if let Some(ohms) = scan_value::<Resistance>(
                    &mut diagnostics,
                    ".driver resistance",
                    fields[1],
                    lineno,
                    |r| r.as_ohms(),
                ) {
                    if ohms <= 0.0 {
                        diagnostics.push(Diagnostic::line(
                            Rule::NonPositiveSynthResistance,
                            lineno,
                            format!(
                                ".driver resistance {:?} must be finite and positive",
                                fields[1]
                            ),
                        ));
                    }
                }
            }
            ".require" => {
                if fields.len() != 3 {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        format!(
                            ".require expects `<node> <time>`, got {} fields",
                            fields.len() - 1
                        ),
                    ));
                    continue;
                }
                if let Some(t) =
                    scan_value::<Time>(&mut diagnostics, ".require time", fields[2], lineno, |t| {
                        t.as_seconds()
                    })
                {
                    if t < 0.0 {
                        diagnostics.push(Diagnostic::line(
                            Rule::MalformedSynthCard,
                            lineno,
                            format!(
                                ".require time {:?} must be finite and non-negative",
                                fields[2]
                            ),
                        ));
                    }
                }
                if requires.iter().any(|(_, n)| n == fields[1]) {
                    diagnostics.push(Diagnostic::line(
                        Rule::MalformedSynthCard,
                        lineno,
                        format!("duplicate .require constraint on node {:?}", fields[1]),
                    ));
                } else {
                    requires.push((lineno, fields[1].to_owned()));
                }
            }
            _ => {}
        }
    }

    if lib_names.is_empty() {
        diagnostics.push(Diagnostic::deck(
            Rule::MissingBufferLibrary,
            "synthesis deck has no .lib buffer card".to_owned(),
        ));
    }
    for (lineno, name) in &use_cards {
        if !lib_names.iter().any(|n| n == name) {
            diagnostics.push(Diagnostic::line(
                Rule::UnknownBufferRef,
                *lineno,
                format!(".use references unknown buffer {name:?}"),
            ));
        }
    }

    // `.require` nodes resolve against the parsed element portion. When
    // the netlist itself does not parse, the base pass above has already
    // errored and node resolution is moot.
    if let Ok(netlist) = Netlist::parse(deck) {
        for (lineno, name) in &requires {
            if netlist.node(name).is_none() {
                diagnostics.push(Diagnostic {
                    rule: Rule::ConstraintOnUnknownNode,
                    line: Some(*lineno),
                    node: Some(name.clone()),
                    message: format!(".require constraint on nonexistent node {name:?}"),
                });
            }
        }
    }

    LintReport::new(diagnostics)
}

/// Mirrors `parse_lib_card`: field shape, key set, value grammar, and the
/// positivity requirement on the buffer's driver resistance.
fn scan_lib_card(
    diagnostics: &mut Vec<Diagnostic>,
    lib_names: &mut Vec<String>,
    fields: &[&str],
    lineno: usize,
) {
    if fields.len() != 5 {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedSynthCard,
            lineno,
            format!(
                ".lib expects `<name> r=<res> cin=<cap> tin=<time>`, got {} fields",
                fields.len() - 1
            ),
        ));
        return;
    }
    let name = fields[1];
    if lib_names.iter().any(|n| n == name) {
        diagnostics.push(Diagnostic::line(
            Rule::MalformedSynthCard,
            lineno,
            format!("duplicate .lib buffer {name:?}"),
        ));
    } else {
        lib_names.push(name.to_owned());
    }
    let mut seen: Vec<&str> = Vec::new();
    for field in &fields[2..] {
        let Some((key, value)) = field.split_once('=') else {
            diagnostics.push(Diagnostic::line(
                Rule::MalformedSynthCard,
                lineno,
                format!(".lib field {field:?} is not `key=value`"),
            ));
            continue;
        };
        if seen.contains(&key) {
            diagnostics.push(Diagnostic::line(
                Rule::MalformedSynthCard,
                lineno,
                format!(".lib repeats key {key:?}"),
            ));
            continue;
        }
        seen.push(key);
        match key {
            "r" => {
                if let Some(ohms) =
                    scan_value::<Resistance>(diagnostics, ".lib resistance", value, lineno, |r| {
                        r.as_ohms()
                    })
                {
                    if ohms <= 0.0 {
                        diagnostics.push(Diagnostic::line(
                            Rule::NonPositiveSynthResistance,
                            lineno,
                            format!(".lib resistance {value:?} must be finite and positive"),
                        ));
                    }
                }
            }
            "cin" => {
                if let Some(farads) = scan_value::<Capacitance>(
                    diagnostics,
                    ".lib input capacitance",
                    value,
                    lineno,
                    |c| c.as_farads(),
                ) {
                    if farads < 0.0 {
                        diagnostics.push(Diagnostic::line(
                            Rule::MalformedSynthCard,
                            lineno,
                            format!(
                                ".lib input capacitance {value:?} must be finite and non-negative"
                            ),
                        ));
                    }
                }
            }
            "tin" => {
                if let Some(seconds) =
                    scan_value::<Time>(diagnostics, ".lib intrinsic delay", value, lineno, |t| {
                        t.as_seconds()
                    })
                {
                    if seconds < 0.0 {
                        diagnostics.push(Diagnostic::line(
                            Rule::MalformedSynthCard,
                            lineno,
                            format!(
                                ".lib intrinsic delay {value:?} must be finite and non-negative"
                            ),
                        ));
                    }
                }
            }
            other => diagnostics.push(Diagnostic::line(
                Rule::MalformedSynthCard,
                lineno,
                format!(".lib has unknown key {other:?}"),
            )),
        }
    }
}

/// Parses one synthesis-card value; syntax and non-finite problems are
/// `L504` (the parser rejects them with the same boundary). Returns the
/// base value for the caller's sign checks, `None` when already reported.
fn scan_value<T: std::str::FromStr<Err = rlc_units::ParseQuantityError>>(
    diagnostics: &mut Vec<Diagnostic>,
    what: &str,
    raw: &str,
    lineno: usize,
    base: impl Fn(T) -> f64,
) -> Option<f64> {
    match raw.parse::<T>() {
        Ok(v) => {
            let value = base(v);
            if !value.is_finite() {
                diagnostics.push(Diagnostic::line(
                    Rule::MalformedSynthCard,
                    lineno,
                    format!("{what} {raw:?} is not finite"),
                ));
                return None;
            }
            Some(value)
        }
        Err(_) => {
            let detail = if is_nan_spelling(raw) {
                format!("{what} {raw:?} is not finite")
            } else {
                format!("{what} has bad value {raw:?}")
            };
            diagnostics.push(Diagnostic::line(Rule::MalformedSynthCard, lineno, detail));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    const CLEAN: &str = "\
* synthesizable clock net
.input in
R1 in n1 400
C1 n1 0 0.8p
R2 n1 n2 400
C2 n2 0 0.8p
.lib bufx r=120 cin=4f tin=15p
.use bufx
.driver 100
.require n2 2n
.end
";

    #[test]
    fn clean_synth_deck_is_clean() {
        let report = lint_synth_deck(CLEAN);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn unknown_buffer_ref_is_l501() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\n.lib a r=120 cin=4f tin=15p\n.use ghost\n";
        let report = lint_synth_deck(deck);
        assert!(report.codes().contains(&"L501"), "{report:?}");
        assert_eq!(Rule::UnknownBufferRef.severity(), Severity::Error);
    }

    #[test]
    fn non_positive_resistances_are_l502() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\n.lib a r=0 cin=4f tin=15p\n.driver -5\n";
        let report = lint_synth_deck(deck);
        let l502 = report
            .diagnostics()
            .iter()
            .filter(|d| d.rule == Rule::NonPositiveSynthResistance)
            .count();
        assert_eq!(l502, 2, "{report:?}");
    }

    #[test]
    fn constraint_on_unknown_node_is_l503() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\n.lib a r=120 cin=4f tin=15p\n.require ghost 1n\n";
        let report = lint_synth_deck(deck);
        assert!(report.codes().contains(&"L503"), "{report:?}");
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::ConstraintOnUnknownNode)
            .unwrap();
        assert_eq!(d.node.as_deref(), Some("ghost"));
        assert_eq!(d.line, Some(4));
    }

    #[test]
    fn malformed_cards_are_l504_and_all_reported() {
        let deck = "\
R1 in n1 400
C1 n1 0 1p
.lib a r=1k cin=4f
.lib b r=1k cin=4f zap=1p
.lib b r=2k cin=4f tin=1p
.use x y
.driver 10 20
.require n1 -1p
.require n1 1p
.require n1 2p
";
        let report = lint_synth_deck(deck);
        let l504 = report
            .diagnostics()
            .iter()
            .filter(|d| d.rule == Rule::MalformedSynthCard)
            .count();
        // field count, unknown key, duplicate lib, .use shape, .driver
        // shape, negative time, duplicate require — every card reported.
        assert!(l504 >= 6, "{l504} in {report:?}");
    }

    #[test]
    fn missing_library_is_l505() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\n.driver 100\n";
        let report = lint_synth_deck(deck);
        assert!(report.codes().contains(&"L505"), "{report:?}");
    }

    #[test]
    fn element_findings_still_fire() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\nC9 n1 n1 1p\n.lib a r=120 cin=4f tin=15p\n";
        let report = lint_synth_deck(deck);
        assert!(report.codes().contains(&"L006"), "{report:?}");
    }

    #[test]
    fn cards_after_end_are_ignored() {
        let deck = "R1 in n1 400\nC1 n1 0 1p\n.lib a r=120 cin=4f tin=15p\n.end\n.use ghost\n";
        let report = lint_synth_deck(deck);
        assert!(report.is_clean(), "{report:?}");
    }
}
