//! Sampled waveforms and the timing measurements the paper's figures use.

use core::fmt;

use rlc_units::Time;

/// Why a timing metric could not be extracted from a waveform.
///
/// The `try_*` measurement methods return this instead of panicking or
/// collapsing every failure into `None`, so differential harnesses (see the
/// `rlc-verify` crate) can distinguish "the response never crossed the
/// level" from "the caller passed a nonsensical reference value".
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MetricError {
    /// The waveform never rises through `level` — e.g. a monotone response
    /// still below 50% at the last sample, or a degenerate source-only
    /// tree observed against a higher reference.
    NoCrossing {
        /// The absolute level that was never reached.
        level: f64,
    },
    /// The reference final value was zero or non-finite.
    InvalidFinalValue {
        /// The offending value.
        v_final: f64,
    },
    /// The band fraction was outside `(0, 1)`.
    InvalidBand {
        /// The offending band.
        band: f64,
    },
    /// The waveform was still outside the settling band at its last
    /// sample, so no settling time exists within the simulated horizon.
    NotSettled {
        /// The requested band.
        band: f64,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::NoCrossing { level } => {
                write!(f, "waveform never rises through level {level}")
            }
            MetricError::InvalidFinalValue { v_final } => {
                write!(f, "final value must be non-zero and finite, got {v_final}")
            }
            MetricError::InvalidBand { band } => {
                write!(f, "band must lie strictly between 0 and 1, got {band}")
            }
            MetricError::NotSettled { band } => {
                write!(
                    f,
                    "waveform has not settled within ±{band} by its last sample"
                )
            }
        }
    }
}

impl std::error::Error for MetricError {}

fn check_v_final(v_final: f64) -> Result<(), MetricError> {
    if v_final == 0.0 || !v_final.is_finite() {
        return Err(MetricError::InvalidFinalValue { v_final });
    }
    Ok(())
}

/// A uniformly or non-uniformly sampled voltage waveform.
///
/// Measurements interpolate linearly between samples, so a simulation with
/// a reasonable time step yields delay/rise numbers accurate well below the
/// step size.
///
/// # Examples
///
/// ```
/// use rlc_sim::Waveform;
/// use rlc_units::Time;
///
/// // A crude exponential rise toward 1 V.
/// let times: Vec<Time> = (0..=100).map(|k| Time::from_picoseconds(k as f64 * 10.0)).collect();
/// let values: Vec<f64> = times.iter().map(|t| 1.0 - (-t.as_seconds() / 200e-12).exp()).collect();
/// let wave = Waveform::new(times, values);
///
/// let t50 = wave.delay_50(1.0).expect("crosses 50%");
/// // Exact: τ·ln2 ≈ 138.6 ps.
/// assert!((t50.as_picoseconds() - 138.6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<Time>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from matching time/value samples.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, fewer than 2 samples are given, times
    /// are not strictly increasing, or any value is non-finite.
    pub fn new(times: Vec<Time>, values: Vec<f64>) -> Self {
        assert_eq!(
            times.len(),
            values.len(),
            "times and values must have equal length"
        );
        assert!(times.len() >= 2, "a waveform needs at least two samples");
        for w in times.windows(2) {
            assert!(
                w[1] > w[0],
                "times must be strictly increasing ({} then {})",
                w[0],
                w[1]
            );
        }
        assert!(
            values.iter().all(|v| v.is_finite()),
            "waveform values must be finite"
        );
        Self { times, values }
    }

    /// The sample times.
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always `false` (construction requires ≥ 2 samples); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The last sampled value (the settled value if the simulation ran long
    /// enough).
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// The value at `t` by linear interpolation (clamped at the ends).
    pub fn sample_at(&self, t: Time) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().expect("non-empty") {
            return self.last_value();
        }
        // Binary search for the bracketing interval.
        let idx = self.times.partition_point(|&sample_t| sample_t <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        let frac = (t - t0).as_seconds() / (t1 - t0).as_seconds();
        v0 + frac * (v1 - v0)
    }

    /// The first time the waveform crosses `level` going upward, linearly
    /// interpolated; `None` if it never does.
    pub fn first_rising_crossing(&self, level: f64) -> Option<Time> {
        for i in 1..self.values.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            if v0 < level && v1 >= level {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let frac = (level - v0) / (v1 - v0);
                return Some(t0 + (t1 - t0) * frac);
            }
        }
        // A waveform that starts at or above the level "crosses" at its
        // first sample.
        if self.values[0] >= level {
            Some(self.times[0])
        } else {
            None
        }
    }

    /// The first time the waveform crosses `level` going upward, as a
    /// typed result: a response that never reaches the level (e.g. a
    /// monotone rise still below it at the last sample) yields
    /// [`MetricError::NoCrossing`] rather than a bare `None`.
    pub fn try_first_rising_crossing(&self, level: f64) -> Result<Time, MetricError> {
        self.first_rising_crossing(level)
            .ok_or(MetricError::NoCrossing { level })
    }

    /// The 50% propagation delay: first crossing of `0.5·v_final`.
    pub fn delay_50(&self, v_final: f64) -> Option<Time> {
        self.first_rising_crossing(0.5 * v_final)
    }

    /// The 50% propagation delay with typed failures: rejects a zero or
    /// non-finite `v_final` and reports non-crossing responses as
    /// [`MetricError::NoCrossing`].
    pub fn try_delay_50(&self, v_final: f64) -> Result<Time, MetricError> {
        check_v_final(v_final)?;
        self.try_first_rising_crossing(0.5 * v_final)
    }

    /// The 10–90% rise time relative to `v_final`.
    pub fn rise_time_10_90(&self, v_final: f64) -> Option<Time> {
        let t10 = self.first_rising_crossing(0.1 * v_final)?;
        let t90 = self.first_rising_crossing(0.9 * v_final)?;
        Some(t90 - t10)
    }

    /// The 10–90% rise time with typed failures; the error names the first
    /// level (10% or 90%) that was never crossed.
    pub fn try_rise_time_10_90(&self, v_final: f64) -> Result<Time, MetricError> {
        check_v_final(v_final)?;
        let t10 = self.try_first_rising_crossing(0.1 * v_final)?;
        let t90 = self.try_first_rising_crossing(0.9 * v_final)?;
        Ok(t90 - t10)
    }

    /// The global maximum as `(time, value)`.
    pub fn peak(&self) -> (Time, f64) {
        let mut best = (self.times[0], self.values[0]);
        for (&t, &v) in self.times.iter().zip(&self.values) {
            if v > best.1 {
                best = (t, v);
            }
        }
        best
    }

    /// Maximum overshoot above `v_final`, as a fraction of `v_final`
    /// (0 if the waveform never exceeds it).
    ///
    /// # Panics
    ///
    /// Panics if `v_final` is zero or non-finite.
    pub fn overshoot_fraction(&self, v_final: f64) -> f64 {
        assert!(
            v_final != 0.0 && v_final.is_finite(),
            "final value must be non-zero and finite, got {v_final}"
        );
        let (_, peak) = self.peak();
        ((peak - v_final) / v_final).max(0.0)
    }

    /// [`overshoot_fraction`](Self::overshoot_fraction) with the reference
    /// validation reported as a typed error instead of a panic.
    pub fn try_overshoot_fraction(&self, v_final: f64) -> Result<f64, MetricError> {
        check_v_final(v_final)?;
        let (_, peak) = self.peak();
        Ok(((peak - v_final) / v_final).max(0.0))
    }

    /// The settling time: the first time after which the waveform stays
    /// within `±band·v_final` of `v_final` (paper Fig. 7; `band` is the
    /// paper's `x`, typically 0.1).
    ///
    /// Returns `None` if the waveform has not settled by its last sample.
    ///
    /// # Panics
    ///
    /// Panics if `band` is not in `(0, 1)` or `v_final` is zero/non-finite.
    pub fn settling_time(&self, v_final: f64, band: f64) -> Option<Time> {
        assert!(
            band > 0.0 && band < 1.0,
            "settling band must lie strictly between 0 and 1, got {band}"
        );
        assert!(
            v_final != 0.0 && v_final.is_finite(),
            "final value must be non-zero and finite, got {v_final}"
        );
        self.settling_core(v_final, band)
    }

    /// [`settling_time`](Self::settling_time) with typed failures: invalid
    /// arguments and a still-unsettled waveform each get their own
    /// [`MetricError`] variant.
    pub fn try_settling_time(&self, v_final: f64, band: f64) -> Result<Time, MetricError> {
        if !(band > 0.0 && band < 1.0) {
            return Err(MetricError::InvalidBand { band });
        }
        check_v_final(v_final)?;
        self.settling_core(v_final, band)
            .ok_or(MetricError::NotSettled { band })
    }

    fn settling_core(&self, v_final: f64, band: f64) -> Option<Time> {
        let tol = band * v_final.abs();
        // Find the last sample outside the band; the crossing into the band
        // after it is the settling instant.
        let mut last_outside: Option<usize> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if (v - v_final).abs() > tol {
                last_outside = Some(i);
            }
        }
        match last_outside {
            None => Some(self.times[0]),
            Some(i) if i + 1 >= self.len() => None, // still outside at the end
            Some(i) => {
                // Interpolate the band crossing between samples i and i+1.
                let (t0, t1) = (self.times[i], self.times[i + 1]);
                let (v0, v1) = (self.values[i], self.values[i + 1]);
                let target = if v0 > v_final + tol {
                    v_final + tol
                } else {
                    v_final - tol
                };
                if (v1 - v0).abs() < f64::MIN_POSITIVE * 16.0 {
                    return Some(t1);
                }
                let frac = ((target - v0) / (v1 - v0)).clamp(0.0, 1.0);
                Some(t0 + (t1 - t0) * frac)
            }
        }
    }

    /// The 50% propagation delay measured *relative to an input waveform*:
    /// output 50% crossing minus input 50% crossing (how delays are
    /// defined for non-step inputs, e.g. the paper's Fig. 9 sweeps).
    ///
    /// Returns `None` if either waveform fails to cross its half level.
    pub fn delay_50_from(&self, input: &Waveform, v_final: f64) -> Option<Time> {
        let t_out = self.first_rising_crossing(0.5 * v_final)?;
        let t_in = input.first_rising_crossing(0.5 * v_final)?;
        Some(t_out - t_in)
    }

    /// Writes the waveform as CSV (`time_s,value` rows with a header).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    ///
    /// # Examples
    ///
    /// ```
    /// use rlc_sim::Waveform;
    /// use rlc_units::Time;
    /// let w = Waveform::new(
    ///     vec![Time::ZERO, Time::from_seconds(1.0)],
    ///     vec![0.0, 1.0],
    /// );
    /// let mut out = Vec::new();
    /// w.write_csv(&mut out)?;
    /// let text = String::from_utf8(out).expect("utf8");
    /// assert!(text.starts_with("time_s,value\n"));
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "time_s,value")?;
        for (t, v) in self.times.iter().zip(&self.values) {
            writeln!(writer, "{:.9e},{:.9e}", t.as_seconds(), v)?;
        }
        Ok(())
    }

    /// Maximum absolute difference from another waveform, comparing by
    /// interpolating `other` at this waveform's sample times.
    pub fn max_abs_difference(&self, other: &Waveform) -> f64 {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (v - other.sample_at(t)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_wave() -> Waveform {
        // 0 → 1 linearly over 10 s, then flat at 1 until 20 s.
        let times: Vec<Time> = (0..=20).map(|k| Time::from_seconds(k as f64)).collect();
        let values: Vec<f64> = (0..=20).map(|k| (k as f64 / 10.0).min(1.0)).collect();
        Waveform::new(times, values)
    }

    #[test]
    fn crossings_interpolate() {
        let w = ramp_wave();
        let t = w.first_rising_crossing(0.55).unwrap();
        assert!((t.as_seconds() - 5.5).abs() < 1e-12);
        assert_eq!(w.delay_50(1.0).unwrap(), Time::from_seconds(5.0));
        assert_eq!(w.rise_time_10_90(1.0).unwrap(), Time::from_seconds(8.0));
    }

    #[test]
    fn missing_crossing_is_none() {
        let w = ramp_wave();
        assert_eq!(w.first_rising_crossing(2.0), None);
    }

    #[test]
    fn waveform_starting_above_level() {
        let w = Waveform::new(
            vec![Time::from_seconds(1.0), Time::from_seconds(2.0)],
            vec![0.8, 0.9],
        );
        assert_eq!(
            w.first_rising_crossing(0.5).unwrap(),
            Time::from_seconds(1.0)
        );
    }

    #[test]
    fn sample_at_interpolates_and_clamps() {
        let w = ramp_wave();
        assert_eq!(w.sample_at(Time::from_seconds(2.5)), 0.25);
        assert_eq!(w.sample_at(Time::from_seconds(-5.0)), 0.0);
        assert_eq!(w.sample_at(Time::from_seconds(100.0)), 1.0);
        assert_eq!(w.sample_at(Time::from_seconds(10.0)), 1.0);
    }

    #[test]
    fn peak_and_overshoot() {
        let times: Vec<Time> = (0..5).map(|k| Time::from_seconds(k as f64)).collect();
        let w = Waveform::new(times, vec![0.0, 0.9, 1.3, 1.05, 1.0]);
        let (pt, pv) = w.peak();
        assert_eq!(pt, Time::from_seconds(2.0));
        assert_eq!(pv, 1.3);
        assert!((w.overshoot_fraction(1.0) - 0.3).abs() < 1e-12);
        // Monotone waveform → zero overshoot.
        assert_eq!(ramp_wave().overshoot_fraction(1.0), 0.0);
    }

    #[test]
    fn settling_time_ringing_waveform() {
        // Rings around 1.0 with shrinking amplitude; settles (band 0.1)
        // after the 1.3 and 0.85 excursions, i.e. between samples 3 and 4.
        let times: Vec<Time> = (0..7).map(|k| Time::from_seconds(k as f64)).collect();
        let w = Waveform::new(times, vec![0.0, 0.9, 1.3, 0.85, 1.05, 0.98, 1.0]);
        let ts = w.settling_time(1.0, 0.1).unwrap();
        assert!(
            ts > Time::from_seconds(3.0) && ts <= Time::from_seconds(4.0),
            "{ts}"
        );
    }

    #[test]
    fn settling_time_none_if_still_outside() {
        let times: Vec<Time> = (0..3).map(|k| Time::from_seconds(k as f64)).collect();
        let w = Waveform::new(times, vec![0.0, 0.5, 0.7]);
        assert_eq!(w.settling_time(1.0, 0.1), None);
    }

    #[test]
    fn settling_time_immediate_if_always_inside() {
        let times: Vec<Time> = (0..3).map(|k| Time::from_seconds(k as f64)).collect();
        let w = Waveform::new(times, vec![0.95, 1.02, 1.0]);
        assert_eq!(w.settling_time(1.0, 0.1).unwrap(), Time::from_seconds(0.0));
    }

    #[test]
    fn delay_relative_to_input() {
        let input = ramp_wave(); // crosses 0.5 at t = 5
        let times: Vec<Time> = (0..=20).map(|k| Time::from_seconds(k as f64)).collect();
        let shifted: Vec<f64> = (0..=20)
            .map(|k| ((k as f64 - 3.0) / 10.0).clamp(0.0, 1.0))
            .collect();
        let output = Waveform::new(times, shifted); // crosses 0.5 at t = 8
        let d = output.delay_50_from(&input, 1.0).unwrap();
        assert!((d.as_seconds() - 3.0).abs() < 1e-9);
        // Missing crossings yield None.
        let flat = Waveform::new(vec![Time::ZERO, Time::from_seconds(1.0)], vec![0.0, 0.1]);
        assert_eq!(flat.delay_50_from(&input, 1.0), None);
    }

    #[test]
    fn csv_round_trip_contains_all_samples() {
        let w = ramp_wave();
        let mut buf = Vec::new();
        w.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), w.len() + 1);
        assert!(text.lines().nth(1).unwrap().starts_with("0.0"));
    }

    #[test]
    fn max_abs_difference_of_shifted_waves() {
        let w = ramp_wave();
        let times: Vec<Time> = (0..=20).map(|k| Time::from_seconds(k as f64)).collect();
        let values: Vec<f64> = (0..=20)
            .map(|k| (k as f64 / 10.0).min(1.0) + 0.05)
            .collect();
        let shifted = Waveform::new(times, values);
        assert!((w.max_abs_difference(&shifted) - 0.05).abs() < 1e-12);
        assert_eq!(w.max_abs_difference(&w.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_times() {
        let _ = Waveform::new(
            vec![Time::from_seconds(1.0), Time::from_seconds(1.0)],
            vec![0.0, 1.0],
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = Waveform::new(vec![Time::ZERO, Time::from_seconds(1.0)], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        let _ = Waveform::new(vec![Time::ZERO], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let _ = Waveform::new(
            vec![Time::ZERO, Time::from_seconds(1.0)],
            vec![0.0, f64::NAN],
        );
    }
}
