//! Transient circuit simulation of RLC trees.
//!
//! The paper validates its closed-form model against IBM's proprietary AS/X
//! circuit simulator. This crate plays that role in the reproduction (see
//! `DESIGN.md`, substitution table): it solves the *exact* linear dynamics
//! of an [`rlc_tree::RlcTree`] in the time domain, with three independent
//! methods that cross-validate each other:
//!
//! * [`simulate`] — an **O(n)-per-step tree solver**: trapezoidal (or
//!   backward-Euler) companion models reduce each step to a resistive tree,
//!   which is solved exactly with one leaf→root Norton-folding pass and one
//!   root→leaf voltage pass. This is the production path; it handles trees
//!   with hundreds of thousands of sections.
//! * [`mna::simulate_mna`] — dense modified-nodal-analysis with a
//!   factor-once LU, the textbook formulation, used as a cross-check.
//! * [`mna::simulate_rk4`] — classic RK4 on the state-space form, a
//!   discretization-independent cross-check (requires all L, C > 0).
//!
//! [`Waveform`] measures simulated signals the way the paper's figures do:
//! 50% delay, 10–90% rise time, overshoot, and settling time.
//!
//! # Examples
//!
//! ```
//! use rlc_tree::{RlcSection, topology};
//! use rlc_units::{Resistance, Inductance, Capacitance, Time};
//! use rlc_sim::{simulate, SimOptions, Source};
//!
//! let section = RlcSection::new(
//!     Resistance::from_ohms(25.0),
//!     Inductance::from_nanohenries(2.0),
//!     Capacitance::from_picofarads(0.5),
//! );
//! let (tree, sink) = topology::single_line(4, section);
//!
//! let options = SimOptions::new(Time::from_picoseconds(2.0), Time::from_nanoseconds(4.0));
//! let result = simulate(&tree, &Source::step(1.0), &options, &[sink]);
//! let wave = &result[0];
//!
//! // The sink settles to the full supply.
//! assert!((wave.last_value() - 1.0).abs() < 1e-3);
//! let delay = wave.delay_50(1.0).expect("signal crosses 50%");
//! assert!(delay > Time::ZERO);
//! ```

pub mod coupled;
pub mod mna;
mod source;
mod tree_sim;
mod waveform;

pub use coupled::simulate_coupled;
pub use source::Source;
pub use tree_sim::{simulate, simulate_all, Integration, SimOptions};
pub use waveform::{MetricError, Waveform};
