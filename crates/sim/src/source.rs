//! Input source waveforms.

use rlc_units::Time;

/// An ideal voltage source waveform driving the root of an RLC tree.
///
/// All sources start at 0 V at `t ≤ 0` (the circuits are simulated from
/// rest) and settle to a final value.
///
/// # Examples
///
/// ```
/// use rlc_sim::Source;
/// use rlc_units::Time;
///
/// let ramp = Source::ramp(1.0, Time::from_picoseconds(100.0));
/// assert_eq!(ramp.value_at(Time::ZERO), 0.0);
/// assert_eq!(ramp.value_at(Time::from_picoseconds(50.0)), 0.5);
/// assert_eq!(ramp.value_at(Time::from_nanoseconds(1.0)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// An ideal step to `v` at `t = 0`.
    Step {
        /// Final voltage.
        v: f64,
    },
    /// A linear ramp from 0 to `v` over `t_rise`, then flat.
    Ramp {
        /// Final voltage.
        v: f64,
        /// Ramp duration.
        t_rise: Time,
    },
    /// The exponential `v·(1 − e^{−t/τ})` of paper eq. (43); its 90% rise
    /// time is `2.3·τ` (eq. 27 of the paper's numbering).
    Exponential {
        /// Final voltage.
        v: f64,
        /// Time constant τ.
        tau: Time,
    },
    /// Piecewise-linear interpolation through `(time, voltage)` breakpoints
    /// (flat extrapolation after the last point).
    PiecewiseLinear {
        /// Breakpoints, strictly increasing in time.
        points: Vec<(Time, f64)>,
    },
}

impl Source {
    /// An ideal step to `v`.
    pub fn step(v: f64) -> Self {
        Source::Step { v }
    }

    /// A saturated ramp to `v` over `t_rise`.
    ///
    /// # Panics
    ///
    /// Panics if `t_rise` is not positive.
    pub fn ramp(v: f64, t_rise: Time) -> Self {
        assert!(
            t_rise.as_seconds() > 0.0,
            "ramp rise time must be positive, got {t_rise}"
        );
        Source::Ramp { v, t_rise }
    }

    /// The exponential input of paper eq. (43).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    pub fn exponential(v: f64, tau: Time) -> Self {
        assert!(
            tau.as_seconds() > 0.0,
            "exponential time constant must be positive, got {tau}"
        );
        Source::Exponential { v, tau }
    }

    /// A piecewise-linear source through the given breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not strictly increasing.
    pub fn piecewise_linear(points: Vec<(Time, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL source needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "PWL times must be strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        Source::PiecewiseLinear { points }
    }

    /// The source voltage at time `t`.
    pub fn value_at(&self, t: Time) -> f64 {
        let ts = t.as_seconds();
        if ts < 0.0 {
            return 0.0;
        }
        match self {
            Source::Step { v } => {
                if ts > 0.0 {
                    *v
                } else {
                    0.0
                }
            }
            Source::Ramp { v, t_rise } => {
                let x = ts / t_rise.as_seconds();
                v * x.min(1.0)
            }
            Source::Exponential { v, tau } => v * (1.0 - (-ts / tau.as_seconds()).exp()),
            Source::PiecewiseLinear { points } => {
                if ts <= points[0].0.as_seconds() {
                    // Linear from (0,0) unless the first breakpoint is at 0.
                    let (t0, v0) = points[0];
                    if t0.as_seconds() == 0.0 {
                        return v0;
                    }
                    return v0 * ts / t0.as_seconds();
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if ts <= t1.as_seconds() {
                        let frac = (ts - t0.as_seconds()) / (t1.as_seconds() - t0.as_seconds());
                        return v0 + frac * (v1 - v0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }

    /// The final (settled) voltage of the source.
    pub fn final_value(&self) -> f64 {
        match self {
            Source::Step { v } | Source::Ramp { v, .. } | Source::Exponential { v, .. } => *v,
            Source::PiecewiseLinear { points } => points.last().expect("non-empty").1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_zero_then_v() {
        let s = Source::step(2.5);
        assert_eq!(s.value_at(Time::from_seconds(-1.0)), 0.0);
        assert_eq!(s.value_at(Time::ZERO), 0.0);
        assert_eq!(s.value_at(Time::from_picoseconds(1.0)), 2.5);
        assert_eq!(s.final_value(), 2.5);
    }

    #[test]
    fn ramp_saturates() {
        let s = Source::ramp(2.0, Time::from_seconds(4.0));
        assert_eq!(s.value_at(Time::from_seconds(1.0)), 0.5);
        assert_eq!(s.value_at(Time::from_seconds(4.0)), 2.0);
        assert_eq!(s.value_at(Time::from_seconds(9.0)), 2.0);
    }

    #[test]
    fn exponential_rise_time_is_2_3_tau() {
        // Paper: the 90% rise time of the exponential input is 2.3·τ.
        let tau = Time::from_seconds(1.0);
        let s = Source::exponential(1.0, tau);
        let v = s.value_at(Time::from_seconds(std::f64::consts::LN_10));
        assert!((v - 0.9).abs() < 1e-6);
    }

    #[test]
    fn pwl_interpolates_and_extrapolates_flat() {
        let s = Source::piecewise_linear(vec![
            (Time::from_seconds(1.0), 0.0),
            (Time::from_seconds(2.0), 1.0),
            (Time::from_seconds(3.0), 0.5),
        ]);
        assert_eq!(s.value_at(Time::from_seconds(0.5)), 0.0);
        assert_eq!(s.value_at(Time::from_seconds(1.5)), 0.5);
        assert_eq!(s.value_at(Time::from_seconds(2.5)), 0.75);
        assert_eq!(s.value_at(Time::from_seconds(10.0)), 0.5);
        assert_eq!(s.final_value(), 0.5);
    }

    #[test]
    fn pwl_before_first_point_ramps_from_zero() {
        let s = Source::piecewise_linear(vec![(Time::from_seconds(2.0), 4.0)]);
        assert_eq!(s.value_at(Time::from_seconds(1.0)), 2.0);
    }

    #[test]
    fn pwl_with_zero_time_first_point() {
        let s = Source::piecewise_linear(vec![(Time::ZERO, 1.0), (Time::from_seconds(1.0), 2.0)]);
        assert_eq!(s.value_at(Time::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_rejects_unsorted() {
        let _ = Source::piecewise_linear(vec![
            (Time::from_seconds(2.0), 0.0),
            (Time::from_seconds(1.0), 1.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn pwl_rejects_empty() {
        let _ = Source::piecewise_linear(vec![]);
    }

    #[test]
    #[should_panic(expected = "rise time must be positive")]
    fn ramp_rejects_zero_rise() {
        let _ = Source::ramp(1.0, Time::ZERO);
    }

    #[test]
    fn all_sources_are_causal() {
        let sources = [
            Source::step(1.0),
            Source::ramp(1.0, Time::from_seconds(1.0)),
            Source::exponential(1.0, Time::from_seconds(1.0)),
            Source::piecewise_linear(vec![(Time::from_seconds(1.0), 1.0)]),
        ];
        for s in &sources {
            assert_eq!(s.value_at(Time::from_seconds(-0.5)), 0.0, "{s:?}");
        }
    }
}
