//! The O(n)-per-step tree-structured transient solver.
//!
//! Trapezoidal (or backward-Euler) companion models turn each time step
//! into a purely resistive network with the same tree topology: every
//! section becomes a conductance `G_b` between parent and child nodes with
//! a parallel current source, and every node capacitor becomes a
//! conductance to ground with a current source. A resistive *tree* is
//! solved exactly in O(n):
//!
//! 1. **Upward (leaf→root) pass** — fold every subtree into its Norton
//!    equivalent `i = A + B·v_parent` as seen from its parent node.
//! 2. **Downward (root→leaf) pass** — with the source voltage known,
//!    propagate node voltages and recover branch currents.
//!
//! Trapezoidal integration is A-stable and second-order accurate, the
//! standard choice for SPICE-class transient analysis; backward Euler is
//! provided for damping numerical ringing and for cross-checks.

use rlc_tree::{NodeId, RlcTree};
use rlc_units::Time;

use crate::{Source, Waveform};

/// Numerical integration scheme for the transient solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Trapezoidal rule: A-stable, second-order accurate (SPICE default).
    #[default]
    Trapezoidal,
    /// Backward Euler: L-stable, first-order; damps numerical oscillation.
    BackwardEuler,
}

/// Options controlling a transient simulation.
///
/// # Examples
///
/// ```
/// use rlc_sim::{Integration, SimOptions};
/// use rlc_units::Time;
///
/// let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(5.0))
///     .with_integration(Integration::BackwardEuler);
/// assert_eq!(options.steps(), 5000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    dt: Time,
    t_stop: Time,
    integration: Integration,
}

impl SimOptions {
    /// Creates options with the given time step and stop time, trapezoidal
    /// integration.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite, or `t_stop < dt`.
    pub fn new(dt: Time, t_stop: Time) -> Self {
        assert!(
            dt.is_finite() && dt.as_seconds() > 0.0,
            "time step must be positive and finite, got {dt}"
        );
        assert!(
            t_stop.is_finite() && t_stop >= dt,
            "stop time must be at least one step, got {t_stop}"
        );
        Self {
            dt,
            t_stop,
            integration: Integration::Trapezoidal,
        }
    }

    /// Selects the integration scheme.
    pub fn with_integration(mut self, integration: Integration) -> Self {
        self.integration = integration;
        self
    }

    /// The time step.
    pub fn dt(&self) -> Time {
        self.dt
    }

    /// The stop time.
    pub fn t_stop(&self) -> Time {
        self.t_stop
    }

    /// The integration scheme.
    pub fn integration(&self) -> Integration {
        self.integration
    }

    /// Number of steps the simulation will take.
    pub fn steps(&self) -> usize {
        (self.t_stop.as_seconds() / self.dt.as_seconds()).ceil() as usize
    }
}

/// Effective series resistance substituted for exactly-zero-impedance
/// sections, which would otherwise produce an infinite companion
/// conductance. Far below any physical wire resistance.
pub(crate) const ZERO_IMPEDANCE_OHMS: f64 = 1e-9;

/// Conductance used to pin capacitor-bearing nodes to their initial
/// voltage during consistent initialization.
pub(crate) const PIN_CONDUCTANCE: f64 = 1e12;

/// Circuit state at `t = 0⁺`, consistent with the input having just jumped
/// to `u0` while every capacitor still holds 0 V and every inductor still
/// carries 0 A.
///
/// Without this, an ideal step input shifts the whole trapezoidal solution
/// by `h/2` (the first step would average the pre- and post-jump input),
/// which is exactly the kind of systematic bias that would corrupt
/// delay-error measurements against the closed-form model.
#[derive(Debug, Clone)]
pub(crate) struct InitialState {
    pub v: Vec<f64>,
    pub i_br: Vec<f64>,
    pub v_l: Vec<f64>,
    pub i_c: Vec<f64>,
}

pub(crate) fn consistent_initial_state(tree: &RlcTree, u0: f64) -> InitialState {
    let n = tree.len();
    // Resistive network at 0⁺: L>0 branches are opens carrying 0 A; L=0
    // branches are resistors; C>0 nodes are pinned to 0 V.
    let mut g = vec![0.0f64; n];
    let mut pin = vec![0.0f64; n];
    for id in tree.node_ids() {
        let s = tree.section(id);
        let idx = id.index();
        if s.inductance().as_henries() == 0.0 {
            let r = s.resistance().as_ohms().max(ZERO_IMPEDANCE_OHMS);
            g[idx] = 1.0 / r;
        }
        if s.capacitance().as_farads() > 0.0 {
            pin[idx] = PIN_CONDUCTANCE;
        }
    }
    let mut fold_a = vec![0.0f64; n];
    let mut fold_b = vec![0.0f64; n];
    let mut fold_k = vec![0.0f64; n];
    let mut fold_d = vec![0.0f64; n];
    for id in tree.postorder() {
        let idx = id.index();
        let mut d = g[idx] + pin[idx];
        let mut k = 0.0;
        for &child in tree.children(id) {
            d += fold_b[child.index()];
            k -= fold_a[child.index()];
        }
        if d == 0.0 {
            // Fully floating subtree: define its voltage as 0.
            d = 1.0;
            k = 0.0;
        }
        fold_d[idx] = d;
        fold_k[idx] = k;
        fold_a[idx] = -g[idx] * k / d;
        fold_b[idx] = g[idx] * (d - g[idx]) / d;
    }
    let mut v = vec![0.0f64; n];
    let mut i_br = vec![0.0f64; n];
    let mut v_l = vec![0.0f64; n];
    for id in tree.preorder() {
        let idx = id.index();
        let v_parent = match tree.parent(id) {
            Some(p) => v[p.index()],
            None => u0,
        };
        let v_new = (g[idx] * v_parent + fold_k[idx]) / fold_d[idx];
        v[idx] = v_new;
        let s = tree.section(id);
        if s.inductance().as_henries() == 0.0 {
            i_br[idx] = g[idx] * (v_parent - v_new);
        } else {
            // Inductor current cannot jump; the step lands across L.
            i_br[idx] = 0.0;
            v_l[idx] = v_parent - v_new;
        }
    }
    let mut i_c = vec![0.0f64; n];
    for id in tree.node_ids() {
        let idx = id.index();
        if tree.section(id).capacitance().as_farads() > 0.0 {
            let mut into_node = i_br[idx];
            for &child in tree.children(id) {
                into_node -= i_br[child.index()];
            }
            i_c[idx] = into_node;
        }
    }
    InitialState { v, i_br, v_l, i_c }
}

/// The input value "just after" `t = 0`, used for consistent
/// initialization: equals the post-jump value for step sources and 0 for
/// sources that rise continuously.
pub(crate) fn input_at_zero_plus(source: &Source) -> f64 {
    source.value_at(Time::from_seconds(f64::MIN_POSITIVE))
}

/// Simulates `tree` driven by `source`, recording waveforms at `observe`.
///
/// Runs in O(sections) per time step and O(steps·observed) memory. Node
/// voltages start from rest (0 V).
///
/// # Panics
///
/// Panics if any observed node is out of range, or the tree is empty.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn simulate(
    tree: &RlcTree,
    source: &Source,
    options: &SimOptions,
    observe: &[NodeId],
) -> Vec<Waveform> {
    assert!(!tree.is_empty(), "cannot simulate an empty tree");
    for &id in observe {
        assert!(
            id.index() < tree.len(),
            "observed node {id} is not in the tree"
        );
    }
    let _span = rlc_obs::span!("sim.simulate");
    rlc_obs::counter!("sim.calls");
    rlc_obs::counter!("sim.sections", tree.len() as u64);
    let setup_span = rlc_obs::span!("setup");
    let n = tree.len();
    let h = options.dt.as_seconds();
    let trapezoidal = options.integration == Integration::Trapezoidal;

    // Precomputed per-section companion constants.
    let mut g_branch = vec![0.0f64; n]; // branch conductance
    let mut l_factor = vec![0.0f64; n]; // 2L/h (trap) or L/h (BE)
    let mut r_series = vec![0.0f64; n];
    let mut g_cap = vec![0.0f64; n]; // 2C/h (trap) or C/h (BE)
    for id in tree.node_ids() {
        let s = tree.section(id);
        let mut r = s.resistance().as_ohms();
        let l = s.inductance().as_henries();
        let c = s.capacitance().as_farads();
        if r == 0.0 && l == 0.0 {
            r = ZERO_IMPEDANCE_OHMS;
        }
        let lf = if trapezoidal { 2.0 * l / h } else { l / h };
        let i = id.index();
        g_branch[i] = 1.0 / (r + lf);
        l_factor[i] = lf;
        r_series[i] = r;
        g_cap[i] = if trapezoidal { 2.0 * c / h } else { c / h };
    }

    let postorder = tree.postorder();
    let preorder = tree.preorder();

    // Dynamic state, initialized consistently with the input at t = 0⁺.
    let init = consistent_initial_state(tree, input_at_zero_plus(source));
    let mut v = init.v; // node voltages
    let mut i_br = init.i_br; // branch currents
                              // Inductor-voltage and capacitor-current histories are trapezoidal
                              // companion state; backward Euler's companions use only (v, i).
    let mut v_l = if trapezoidal { init.v_l } else { vec![0.0; n] };
    let mut i_c = if trapezoidal { init.i_c } else { vec![0.0; n] };

    // Scratch buffers for the two passes.
    let mut i_src = vec![0.0f64; n];
    let mut cap_src = vec![0.0f64; n];
    let mut fold_a = vec![0.0f64; n];
    let mut fold_b = vec![0.0f64; n];
    let mut fold_k = vec![0.0f64; n];
    let mut fold_d = vec![0.0f64; n];

    let steps = options.steps();
    let mut recorded: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); observe.len()];
    let mut times: Vec<Time> = Vec::with_capacity(steps + 1);
    times.push(Time::ZERO);
    for (slot, &id) in observe.iter().enumerate() {
        recorded[slot].push(v[id.index()]);
    }
    drop(setup_span);

    let stepping_span = rlc_obs::span!("stepping");
    for step in 1..=steps {
        let t_next = Time::from_seconds(step as f64 * h);
        let u = source.value_at(t_next);

        // Companion sources from the previous state.
        for idx in 0..n {
            i_src[idx] = g_branch[idx] * (l_factor[idx] * i_br[idx] + v_l[idx]);
            cap_src[idx] = g_cap[idx] * v[idx] + i_c[idx];
        }

        // Upward pass: Norton-fold subtrees.
        for &id in &postorder {
            let idx = id.index();
            let mut d = g_branch[idx] + g_cap[idx];
            let mut k = i_src[idx] + cap_src[idx];
            for &child in tree.children(id) {
                d += fold_b[child.index()];
                k -= fold_a[child.index()];
            }
            fold_d[idx] = d;
            fold_k[idx] = k;
            fold_a[idx] = i_src[idx] - g_branch[idx] * k / d;
            fold_b[idx] = g_branch[idx] * (d - g_branch[idx]) / d;
        }

        // Downward pass: propagate voltages, update state.
        for &id in &preorder {
            let idx = id.index();
            let v_parent = match tree.parent(id) {
                Some(p) => v[p.index()],
                None => u,
            };
            let v_new = (g_branch[idx] * v_parent + fold_k[idx]) / fold_d[idx];
            let i_new = g_branch[idx] * (v_parent - v_new) + i_src[idx];
            if trapezoidal {
                v_l[idx] = (v_parent - v_new) - r_series[idx] * i_new;
                i_c[idx] = g_cap[idx] * v_new - cap_src[idx];
            }
            v[idx] = v_new;
            i_br[idx] = i_new;
        }

        times.push(t_next);
        for (slot, &id) in observe.iter().enumerate() {
            recorded[slot].push(v[id.index()]);
        }
    }
    drop(stepping_span);
    rlc_obs::counter!("sim.steps", steps as u64);

    recorded
        .into_iter()
        .map(|values| Waveform::new(times.clone(), values))
        .collect()
}

/// Simulates `tree` and returns a waveform for **every** node, in arena
/// order. Convenience wrapper over [`simulate`]; memory is
/// O(steps·sections).
///
/// # Panics
///
/// Panics if the tree is empty.
pub fn simulate_all(tree: &RlcTree, source: &Source, options: &SimOptions) -> Vec<Waveform> {
    let all: Vec<NodeId> = tree.node_ids().collect();
    simulate(tree, source, options, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_tree::{topology, RlcSection};
    use rlc_units::{Capacitance, Inductance, Resistance};

    fn s(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_henries(l),
            Capacitance::from_farads(c),
        )
    }

    /// Exact step response of a single RLC section (second-order system).
    fn exact_single_section(r: f64, l: f64, c: f64, t: f64) -> f64 {
        use eed::SecondOrderModel;
        let m = SecondOrderModel::from_section(&s(r, l, c));
        m.unit_step(Time::from_seconds(t))
    }

    #[test]
    fn single_rc_section_matches_exponential() {
        // τ = 1 s; dt = 1 ms → trapezoidal error ≪ 1e-5.
        let (tree, node) = topology::single_line(1, s(1.0, 0.0, 1.0));
        let options = SimOptions::new(Time::from_seconds(1e-3), Time::from_seconds(5.0));
        let w = &simulate(&tree, &Source::step(1.0), &options, &[node])[0];
        for &t in &[0.5f64, 1.0, 2.0, 4.0] {
            let exact = 1.0 - (-t).exp();
            let got = w.sample_at(Time::from_seconds(t));
            assert!((got - exact).abs() < 1e-6, "t={t}: {got} vs {exact}");
        }
    }

    #[test]
    fn single_rlc_section_matches_closed_form_all_regimes() {
        for (r, l, c) in [(0.6, 1.0, 1.0), (2.0, 1.0, 1.0), (5.0, 1.0, 1.0)] {
            let (tree, node) = topology::single_line(1, s(r, l, c));
            let options = SimOptions::new(Time::from_seconds(2e-3), Time::from_seconds(30.0));
            let w = &simulate(&tree, &Source::step(1.0), &options, &[node])[0];
            for &t in &[0.5, 1.5, 3.0, 8.0, 20.0] {
                let exact = exact_single_section(r, l, c, t);
                let got = w.sample_at(Time::from_seconds(t));
                assert!((got - exact).abs() < 5e-5, "R={r}: t={t}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn all_nodes_settle_to_supply() {
        let (tree, _) = topology::fig5(s(30.0, 2e-9, 0.4e-12));
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(20.0));
        let waves = simulate_all(&tree, &Source::step(1.8), &options);
        assert_eq!(waves.len(), tree.len());
        for (i, w) in waves.iter().enumerate() {
            assert!(
                (w.last_value() - 1.8).abs() < 1e-4,
                "node {i} settled to {}",
                w.last_value()
            );
        }
    }

    #[test]
    fn dc_path_resistance_is_irrelevant_at_steady_state() {
        // Even a strongly asymmetric tree settles every node to Vdd: no DC
        // current flows into capacitors.
        let tree = topology::asymmetric_tree(4, 4.0, s(50.0, 1e-9, 0.3e-12));
        let options = SimOptions::new(Time::from_picoseconds(2.0), Time::from_nanoseconds(60.0));
        let waves = simulate_all(&tree, &Source::step(1.0), &options);
        for w in &waves {
            assert!((w.last_value() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_euler_and_trapezoidal_agree_when_converged() {
        let (tree, sink) = topology::single_line(3, s(20.0, 1e-9, 0.3e-12));
        let fine = Time::from_femtoseconds(50.0);
        let opts_tr = SimOptions::new(fine, Time::from_nanoseconds(3.0));
        let opts_be = SimOptions::new(fine, Time::from_nanoseconds(3.0))
            .with_integration(Integration::BackwardEuler);
        let w_tr = &simulate(&tree, &Source::step(1.0), &opts_tr, &[sink])[0];
        let w_be = &simulate(&tree, &Source::step(1.0), &opts_be, &[sink])[0];
        assert!(w_tr.max_abs_difference(w_be) < 5e-3);
    }

    #[test]
    fn underdamped_tree_rings_in_simulation() {
        // Low resistance + high inductance → visible overshoot.
        let (tree, sink) = topology::single_line(2, s(5.0, 10e-9, 0.5e-12));
        let options = SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(10.0));
        let w = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        assert!(
            w.overshoot_fraction(1.0) > 0.2,
            "expected strong ringing, got {}",
            w.overshoot_fraction(1.0)
        );
        // And it settles eventually.
        assert!(w.settling_time(1.0, 0.1).is_some());
    }

    #[test]
    fn overdamped_tree_is_monotone() {
        let (tree, sink) = topology::single_line(3, s(200.0, 0.1e-9, 0.5e-12));
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(20.0));
        let w = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        assert!(w.overshoot_fraction(1.0) < 1e-6);
        for pair in w.values().windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "response must be monotone");
        }
    }

    #[test]
    fn balanced_tree_sinks_are_identical() {
        let tree = topology::balanced_tree(3, 2, s(25.0, 3e-9, 0.4e-12));
        let sinks: Vec<NodeId> = tree.leaves().collect();
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(5.0));
        let waves = simulate(&tree, &Source::step(1.0), &options, &sinks);
        for w in &waves[1..] {
            assert!(waves[0].max_abs_difference(w) < 1e-12);
        }
    }

    #[test]
    fn balanced_tree_equals_equivalent_ladder() {
        // Paper Fig. 10: a balanced tree is equivalent to a ladder with the
        // parallel sections merged (R/2, L/2, 2C per level for binary).
        let base = s(20.0, 2e-9, 0.3e-12);
        let tree = topology::balanced_tree(3, 2, base);
        let sink = tree.leaves().next().unwrap();

        let mut ladder = rlc_tree::RlcTree::new();
        let l1 = ladder.add_root_section(base);
        let l2 = ladder.add_section(l1, s(10.0, 1e-9, 0.6e-12));
        let l3 = ladder.add_section(l2, s(5.0, 0.5e-9, 1.2e-12));

        let options = SimOptions::new(Time::from_picoseconds(0.5), Time::from_nanoseconds(5.0));
        let w_tree = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        let w_ladder = &simulate(&ladder, &Source::step(1.0), &options, &[l3])[0];
        assert!(
            w_tree.max_abs_difference(w_ladder) < 1e-9,
            "diff = {}",
            w_tree.max_abs_difference(w_ladder)
        );
    }

    #[test]
    fn zero_impedance_sections_act_as_shorts() {
        // A zero section splicing two real sections ≈ the two sections
        // joined directly.
        let real = s(10.0, 1e-9, 0.2e-12);
        let mut spliced = rlc_tree::RlcTree::new();
        let a = spliced.add_root_section(real);
        let z = spliced.add_section(a, RlcSection::zero());
        let b = spliced.add_section(z, real);

        let (plain, sink) = topology::single_line(2, real);
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(5.0));
        let w1 = &simulate(&spliced, &Source::step(1.0), &options, &[b])[0];
        let w2 = &simulate(&plain, &Source::step(1.0), &options, &[sink])[0];
        assert!(w1.max_abs_difference(w2) < 1e-5);
    }

    #[test]
    fn ramp_and_exponential_sources_track() {
        let (tree, sink) = topology::single_line(2, s(10.0, 0.5e-9, 0.2e-12));
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(20.0));
        let slow_ramp = Source::ramp(1.0, Time::from_nanoseconds(10.0));
        let w = &simulate(&tree, &slow_ramp, &options, &[sink])[0];
        // At t = 5 ns the input is at 0.5; a fast tree tracks it closely.
        let mid = w.sample_at(Time::from_nanoseconds(5.0));
        assert!((mid - 0.5).abs() < 0.02, "mid = {mid}");
        assert!((w.last_value() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn waveforms_share_time_axis_with_t0() {
        let (tree, sink) = topology::single_line(1, s(1.0, 0.0, 1.0));
        let options = SimOptions::new(Time::from_seconds(0.5), Time::from_seconds(2.0));
        let w = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        assert_eq!(w.len(), 5); // t = 0, 0.5, 1.0, 1.5, 2.0
        assert_eq!(w.times()[0], Time::ZERO);
        // The t = 0⁺ consistent initialization leaves capacitor nodes within
        // a pin-conductance residue of 0 V.
        assert!(w.values()[0].abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn rejects_empty_tree() {
        let tree = rlc_tree::RlcTree::new();
        let options = SimOptions::new(Time::from_seconds(1.0), Time::from_seconds(2.0));
        let _ = simulate(&tree, &Source::step(1.0), &options, &[]);
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn rejects_bad_dt() {
        let _ = SimOptions::new(Time::ZERO, Time::from_seconds(1.0));
    }
}
