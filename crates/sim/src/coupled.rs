//! Exact transient simulation of capacitively coupled net groups.
//!
//! A [`CoupledGroup`] is several RLC trees tied together by coupling
//! capacitors. Stacking each net's descriptor system (see [`crate::mna`])
//! into one block-diagonal system and stamping every coupling capacitor
//! `Cc` between global node voltages `p`, `q` into the capacitance matrix —
//!
//! ```text
//! E[p][p] += Cc    E[p][q] −= Cc
//! E[q][q] += Cc    E[q][p] −= Cc
//! ```
//!
//! — gives the exact linear dynamics of the whole group, with one
//! independent ideal source per net. [`simulate_coupled`] integrates it
//! with the same factor-once trapezoidal scheme as [`crate::mna`]; it is
//! the oracle the closed-form crosstalk estimates in `rlc-couple` are
//! differenced against.
//!
//! Because the group is linear and simulated from rest, switching
//! scenarios reduce to source choices: a falling aggressor next to a
//! rising victim is `Source::step(-1)` beside `Source::step(1)` (the
//! coupling caps block DC, so only edges matter), and a quiet victim is
//! `Source::step(0)`.

use rlc_numeric::linalg::Matrix;
use rlc_tree::coupled::CoupledGroup;
use rlc_tree::NodeId;
use rlc_units::Time;

use crate::tree_sim::{input_at_zero_plus, PIN_CONDUCTANCE, ZERO_IMPEDANCE_OHMS};
use crate::{SimOptions, Source, Waveform};

/// Simulates a coupled group with dense trapezoidal MNA, one source per
/// net, recording the `(net, node)` pairs in `observe`.
///
/// Complexity: one O(N³) factorization plus O(N²) per step for
/// `N = 2·Σ sections` — intended for verification-sized groups, like
/// [`crate::mna::simulate_mna`] for single nets.
///
/// # Panics
///
/// Panics if `sources.len()` differs from the group's net count, an
/// observed pair is out of range, or the trapezoidal iteration matrix is
/// singular (not possible for physical groups).
pub fn simulate_coupled(
    group: &CoupledGroup,
    sources: &[Source],
    options: &SimOptions,
    observe: &[(usize, NodeId)],
) -> Vec<Waveform> {
    let nets = group.nets();
    assert_eq!(
        sources.len(),
        nets.len(),
        "need exactly one source per net ({} nets, {} sources)",
        nets.len(),
        sources.len()
    );
    for &(net, node) in observe {
        assert!(net < nets.len(), "observed net {net} is not in the group");
        assert!(
            node.index() < nets[net].tree().len(),
            "observed node {node} is not in net {net}"
        );
    }
    let _span = rlc_obs::span!("sim.coupled");
    rlc_obs::counter!("sim.coupled.calls");

    // Block layout: net k's state is [v_0…v_{n_k−1}, i_0…i_{n_k−1}] at
    // offset `state_off[k]`; its voltages also get compact rows
    // `v_off[k]…` in the voltage-only initial solve.
    let mut state_off = Vec::with_capacity(nets.len());
    let mut v_off = Vec::with_capacity(nets.len());
    let mut dim = 0usize;
    let mut nv = 0usize;
    for net in nets {
        state_off.push(dim);
        v_off.push(nv);
        dim += 2 * net.tree().len();
        nv += net.tree().len();
    }
    let vrow = |net: usize, node: NodeId| state_off[net] + node.index();
    rlc_obs::value!("sim.coupled.dim", dim);

    // Stacked descriptor system: per-net blocks, then coupling stamps.
    let mut e = Matrix::zeros(dim, dim);
    let mut a = Matrix::zeros(dim, dim);
    // b_cols[k] lists the rows driven by net k's source.
    let mut b_cols: Vec<Vec<usize>> = vec![Vec::new(); nets.len()];
    for (k, net) in nets.iter().enumerate() {
        let tree = net.tree();
        let n = tree.len();
        let off = state_off[k];
        for id in tree.node_ids() {
            let i = id.index();
            let s = tree.section(id);
            e[(off + i, off + i)] = s.capacitance().as_farads();
            a[(off + i, off + n + i)] = 1.0;
            for &c in tree.children(id) {
                a[(off + i, off + n + c.index())] = -1.0;
            }
            e[(off + n + i, off + n + i)] = s.inductance().as_henries();
            a[(off + n + i, off + i)] = -1.0;
            a[(off + n + i, off + n + i)] = -s.resistance().as_ohms();
            match tree.parent(id) {
                Some(p) => a[(off + n + i, off + p.index())] = 1.0,
                None => b_cols[k].push(off + n + i),
            }
        }
    }
    for c in group.couplings() {
        let p = vrow(c.a.net, c.a.node);
        let q = vrow(c.b.net, c.b.node);
        let cc = c.capacitance.as_farads();
        e[(p, p)] += cc;
        e[(q, q)] += cc;
        e[(p, q)] -= cc;
        e[(q, p)] -= cc;
    }

    let h = options.dt().as_seconds();
    let mut m1 = Matrix::zeros(dim, dim);
    let mut m2 = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let e_term = 2.0 * e[(i, j)] / h;
            m1[(i, j)] = e_term - a[(i, j)];
            m2[(i, j)] = e_term + a[(i, j)];
        }
    }
    let lu = m1
        .lu()
        .expect("trapezoidal iteration matrix of a physical coupled group is nonsingular");
    rlc_obs::counter!("sim.coupled.lu_factorizations");

    let u0: Vec<f64> = sources.iter().map(input_at_zero_plus).collect();
    let mut x = initial_state(group, &u0, &v_off, dim, &state_off);

    let steps = options.steps();
    let mut times = Vec::with_capacity(steps + 1);
    let mut recorded: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); observe.len()];
    times.push(Time::ZERO);
    for (slot, &(net, node)) in observe.iter().enumerate() {
        recorded[slot].push(x[vrow(net, node)]);
    }
    let mut u_prev = u0;
    for step in 1..=steps {
        let t_next = Time::from_seconds(step as f64 * h);
        let mut rhs = m2.mul_vec(&x);
        for (k, source) in sources.iter().enumerate() {
            let u_next = source.value_at(t_next);
            for &row in &b_cols[k] {
                rhs[row] += u_prev[k] + u_next;
            }
            u_prev[k] = u_next;
        }
        x = lu.solve(&rhs).expect("factored system solves");
        times.push(t_next);
        for (slot, &(net, node)) in observe.iter().enumerate() {
            recorded[slot].push(x[vrow(net, node)]);
        }
    }
    rlc_obs::counter!("sim.coupled.steps", steps as u64);
    recorded
        .into_iter()
        .map(|values| Waveform::new(times.clone(), values))
        .collect()
}

/// A consistent state at `t = 0⁺`: grounded and coupling capacitors hold
/// their from-rest voltages (pinned via a large conductance), inductive
/// branches are open, zero-inductance branches are resistive. Mirrors the
/// single-net `consistent_initial_state`, solved densely over the group's
/// node voltages. Falls back to the from-rest zero state if the pinned
/// resistive system is singular (only possible for degenerate groups whose
/// initial state is zero anyway).
fn initial_state(
    group: &CoupledGroup,
    u0: &[f64],
    v_off: &[usize],
    dim: usize,
    state_off: &[usize],
) -> Vec<f64> {
    let nets = group.nets();
    let nv: usize = nets.iter().map(|n| n.tree().len()).sum();
    let mut g = Matrix::zeros(nv, nv);
    let mut z = vec![0.0; nv];
    let mut stamped = vec![false; nv];
    for (k, net) in nets.iter().enumerate() {
        let tree = net.tree();
        for id in tree.node_ids() {
            let row = v_off[k] + id.index();
            let s = tree.section(id);
            if s.capacitance().as_farads() > 0.0 {
                g[(row, row)] += PIN_CONDUCTANCE;
                stamped[row] = true;
            }
            if s.inductance().as_henries() == 0.0 {
                let r = s.resistance().as_ohms().max(ZERO_IMPEDANCE_OHMS);
                let gbr = 1.0 / r;
                g[(row, row)] += gbr;
                stamped[row] = true;
                match tree.parent(id) {
                    Some(p) => {
                        let prow = v_off[k] + p.index();
                        g[(prow, prow)] += gbr;
                        g[(row, prow)] -= gbr;
                        g[(prow, row)] -= gbr;
                        stamped[prow] = true;
                    }
                    None => z[row] += gbr * u0[k],
                }
            }
        }
    }
    for c in group.couplings() {
        let p = v_off[c.a.net] + c.a.node.index();
        let q = v_off[c.b.net] + c.b.node.index();
        g[(p, p)] += PIN_CONDUCTANCE;
        g[(q, q)] += PIN_CONDUCTANCE;
        g[(p, q)] -= PIN_CONDUCTANCE;
        g[(q, p)] -= PIN_CONDUCTANCE;
        stamped[p] = true;
        stamped[q] = true;
    }
    for (row, &s) in stamped.iter().enumerate() {
        if !s {
            g[(row, row)] = 1.0;
        }
    }

    let v = match g.lu().and_then(|lu| lu.solve(&z)) {
        Ok(v) => v,
        Err(_) => vec![0.0; nv],
    };

    let mut x = vec![0.0; dim];
    for (k, net) in nets.iter().enumerate() {
        let tree = net.tree();
        let n = tree.len();
        for id in tree.node_ids() {
            let i = id.index();
            x[state_off[k] + i] = v[v_off[k] + i];
            // Inductive branches start open; zero-L branches carry the
            // resistive current implied by the solved voltages.
            if tree.section(id).inductance().as_henries() == 0.0 {
                let r = tree
                    .section(id)
                    .resistance()
                    .as_ohms()
                    .max(ZERO_IMPEDANCE_OHMS);
                let v_parent = match tree.parent(id) {
                    Some(p) => v[v_off[k] + p.index()],
                    None => u0[k],
                };
                x[state_off[k] + n + i] = (v_parent - v[v_off[k] + i]) / r;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::simulate_mna;
    use crate::simulate;
    use rlc_units::Capacitance;

    fn parse(deck: &str) -> CoupledGroup {
        CoupledGroup::parse(deck).expect("test deck parses")
    }

    fn options() -> SimOptions {
        SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(6.0))
    }

    const PAIR: &str = "\
.net v
R1 in n1 25
L1 n1 n2 2n
C1 n2 0 0.5p
R2 n2 n3 25
L2 n3 n4 2n
C2 n4 0 0.5p
.net a
R1 in m1 25
L1 m1 m2 2n
C1 m2 0 0.5p
R2 m2 m3 25
L2 m3 m4 2n
C2 m4 0 0.5p
K1 v.n4 a.m4 0.2p
.end
";

    #[test]
    fn uncoupled_group_matches_single_net_solvers() {
        let deck = "\
.net only
R1 in n1 25
L1 n1 n2 2n
C1 n2 0 0.5p
R2 n2 n3 40
L2 n3 n4 1n
C2 n4 0 0.3p
";
        let group = parse(deck);
        let tree = group.nets()[0].tree();
        let sink = tree.leaves().next().expect("leaf");
        let opts = options();
        let src = Source::step(1.0);
        let coupled = &simulate_coupled(&group, std::slice::from_ref(&src), &opts, &[(0, sink)])[0];
        let mna = &simulate_mna(tree, &src, &opts, &[sink])[0];
        let fast = &simulate(tree, &src, &opts, &[sink])[0];
        assert!(coupled.max_abs_difference(mna) < 1e-10);
        assert!(coupled.max_abs_difference(fast) < 1e-8);
    }

    #[test]
    fn same_direction_switching_on_a_symmetric_pair_is_transparent() {
        // Both nets switch identically, so the coupling cap never sees a
        // voltage difference: waveforms must equal the uncoupled net's.
        let group = parse(PAIR);
        let tree = group.nets()[0].tree();
        let sink = tree.leaves().next().expect("leaf");
        let opts = options();
        let both = [Source::step(1.0), Source::step(1.0)];
        let w = &simulate_coupled(&group, &both, &opts, &[(0, sink)])[0];
        let lone = &simulate(tree, &Source::step(1.0), &opts, &[sink])[0];
        assert!(
            w.max_abs_difference(lone) < 1e-8,
            "diff {}",
            w.max_abs_difference(lone)
        );
    }

    #[test]
    fn opposite_switching_on_a_symmetric_pair_doubles_the_coupling() {
        // With mirror-image drive the far node swings −v, so the coupling
        // cap behaves exactly like a grounded 2·Cc (the Miller worst case).
        let group = parse(PAIR);
        let tree = group.nets()[0].tree();
        let attach = group.couplings()[0].a.node;
        let sink = tree.leaves().next().expect("leaf");
        let opts = options();
        let w = &simulate_coupled(
            &group,
            &[Source::step(1.0), Source::step(-1.0)],
            &opts,
            &[(0, sink)],
        )[0];

        let mut miller = tree.clone();
        let cc = group.couplings()[0].capacitance;
        let sec = miller.section_mut(attach);
        *sec = rlc_tree::RlcSection::new(
            sec.resistance(),
            sec.inductance(),
            sec.capacitance() + Capacitance::from_farads(2.0 * cc.as_farads()),
        );
        let reference = &simulate(&miller, &Source::step(1.0), &opts, &[sink])[0];
        assert!(
            w.max_abs_difference(reference) < 1e-8,
            "diff {}",
            w.max_abs_difference(reference)
        );
    }

    #[test]
    fn quiet_victim_sees_a_noise_bump_that_decays() {
        let group = parse(PAIR);
        let sink = group.nets()[0].tree().leaves().next().expect("leaf");
        let opts = options();
        let w = &simulate_coupled(
            &group,
            &[Source::step(0.0), Source::step(1.0)],
            &opts,
            &[(0, sink)],
        )[0];
        let (_, peak) = w.peak();
        assert!(peak > 0.01, "expected visible crosstalk, peak {peak}");
        assert!(peak < 1.0, "noise cannot exceed the aggressor swing");
        assert!(
            w.last_value().abs() < 1e-3,
            "coupled noise must decay to zero, got {}",
            w.last_value()
        );
    }

    #[test]
    fn linearity_superposes_switching_scenarios() {
        // step(+1)/step(−1) minus step(+1)/step(+1) equals twice the pure
        // crosstalk response 0/step(−1)… exercised as: opposite = same +
        // 2 × (quiet victim with falling aggressor).
        let group = parse(PAIR);
        let sink = group.nets()[0].tree().leaves().next().expect("leaf");
        let opts = options();
        let opposite = &simulate_coupled(
            &group,
            &[Source::step(1.0), Source::step(-1.0)],
            &opts,
            &[(0, sink)],
        )[0];
        let same = &simulate_coupled(
            &group,
            &[Source::step(1.0), Source::step(1.0)],
            &opts,
            &[(0, sink)],
        )[0];
        let quiet_fall = &simulate_coupled(
            &group,
            &[Source::step(0.0), Source::step(-1.0)],
            &opts,
            &[(0, sink)],
        )[0];
        for i in 0..opposite.len() {
            let recomposed = same.values()[i] + 2.0 * quiet_fall.values()[i];
            assert!(
                (opposite.values()[i] - recomposed).abs() < 1e-9,
                "superposition violated at sample {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one source per net")]
    fn source_count_mismatch_panics() {
        let group = parse(PAIR);
        let _ = simulate_coupled(&group, &[Source::step(1.0)], &options(), &[]);
    }
}
