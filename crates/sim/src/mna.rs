//! Dense modified-nodal-analysis and state-space cross-check simulators.
//!
//! These are deliberately textbook formulations used to validate the O(n)
//! tree solver (and, transitively, the closed-form models): the same
//! circuit simulated three independent ways must agree.
//!
//! The descriptor system for a tree of `n` sections is
//!
//! ```text
//! E·x' = A·x + B·u,    x = [v_0 … v_{n−1}, i_0 … i_{n−1}]
//!
//! node i:    C_i·v̇_i = i_i − Σ_{children c} i_c
//! branch i:  L_i·i̇_i = v_parent(i) − v_i − R_i·i_i     (v_parent = u at roots)
//! ```
//!
//! [`simulate_mna`] integrates it with the trapezoidal rule, factoring the
//! constant iteration matrix once (O(n³) once, O(n²) per step) — fine for
//! the cross-check-sized circuits it exists for. [`simulate_rk4`] runs
//! classic RK4 on the explicit form `x' = E⁻¹(Ax + Bu)`, which exists when
//! every section has positive `L` and `C`.

use rlc_numeric::linalg::Matrix;
use rlc_tree::{NodeId, RlcTree};
use rlc_units::Time;

use crate::{SimOptions, Source, Waveform};

/// Builds `(E, A, B)` for the descriptor system described in the module
/// docs.
fn descriptor_system(tree: &RlcTree) -> (Matrix, Matrix, Vec<f64>) {
    let n = tree.len();
    let dim = 2 * n;
    let mut e = Matrix::zeros(dim, dim);
    let mut a = Matrix::zeros(dim, dim);
    let mut b = vec![0.0; dim];
    for id in tree.node_ids() {
        let i = id.index();
        let s = tree.section(id);
        // Node equation.
        e[(i, i)] = s.capacitance().as_farads();
        a[(i, n + i)] = 1.0;
        for &c in tree.children(id) {
            a[(i, n + c.index())] = -1.0;
        }
        // Branch equation.
        e[(n + i, n + i)] = s.inductance().as_henries();
        a[(n + i, i)] = -1.0;
        a[(n + i, n + i)] = -s.resistance().as_ohms();
        match tree.parent(id) {
            Some(p) => a[(n + i, p.index())] = 1.0,
            None => b[n + i] = 1.0,
        }
    }
    (e, a, b)
}

/// Simulates `tree` with dense trapezoidal MNA, recording `observe` nodes.
///
/// Complexity: one O(n³) factorization plus O(n²) per step — intended for
/// the small circuits used to cross-validate [`crate::simulate`].
///
/// # Panics
///
/// Panics if the tree is empty, an observed node is out of range, or the
/// trapezoidal iteration matrix is singular (not possible for physical
/// trees with the zero-impedance substitution applied by the caller).
pub fn simulate_mna(
    tree: &RlcTree,
    source: &Source,
    options: &SimOptions,
    observe: &[NodeId],
) -> Vec<Waveform> {
    assert!(!tree.is_empty(), "cannot simulate an empty tree");
    for &id in observe {
        assert!(
            id.index() < tree.len(),
            "observed node {id} is not in the tree"
        );
    }
    let _span = rlc_obs::span!("sim.mna");
    rlc_obs::counter!("sim.mna.calls");
    let n = tree.len();
    let dim = 2 * n;
    let h = options.dt().as_seconds();
    rlc_obs::value!("sim.mna.dim", dim);
    let setup_span = rlc_obs::span!("setup");
    let (e, a, b) = descriptor_system(tree);

    // M1 = 2E/h − A (factored once);   M2 = 2E/h + A.
    let mut m1 = Matrix::zeros(dim, dim);
    let mut m2 = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let e_term = 2.0 * e[(i, j)] / h;
            m1[(i, j)] = e_term - a[(i, j)];
            m2[(i, j)] = e_term + a[(i, j)];
        }
    }
    drop(setup_span);
    let factor_span = rlc_obs::span!("factor");
    let lu = m1
        .lu()
        .expect("trapezoidal iteration matrix of a physical RLC tree is nonsingular");
    drop(factor_span);
    rlc_obs::counter!("sim.mna.lu_factorizations");

    let steps = options.steps();
    // Initialize consistently with the input at t = 0⁺ (see tree_sim).
    let init = crate::tree_sim::consistent_initial_state(
        tree,
        crate::tree_sim::input_at_zero_plus(source),
    );
    let mut x = vec![0.0f64; dim];
    x[..n].copy_from_slice(&init.v);
    x[n..].copy_from_slice(&init.i_br);
    let mut times = Vec::with_capacity(steps + 1);
    let mut recorded: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); observe.len()];
    times.push(Time::ZERO);
    for (slot, &id) in observe.iter().enumerate() {
        recorded[slot].push(x[id.index()]);
    }
    let mut u_prev = crate::tree_sim::input_at_zero_plus(source);
    let stepping_span = rlc_obs::span!("stepping");
    for step in 1..=steps {
        let t_next = Time::from_seconds(step as f64 * h);
        let u_next = source.value_at(t_next);
        let mut rhs = m2.mul_vec(&x);
        for (r, &bi) in rhs.iter_mut().zip(&b) {
            *r += bi * (u_prev + u_next);
        }
        x = lu.solve(&rhs).expect("factored system solves");
        u_prev = u_next;
        times.push(t_next);
        for (slot, &id) in observe.iter().enumerate() {
            recorded[slot].push(x[id.index()]);
        }
    }
    drop(stepping_span);
    rlc_obs::counter!("sim.mna.steps", steps as u64);
    rlc_obs::counter!("sim.mna.solves", steps as u64);
    recorded
        .into_iter()
        .map(|values| Waveform::new(times.clone(), values))
        .collect()
}

/// Simulates `tree` with classic RK4 on the explicit state-space form.
///
/// A discretization-independent cross-check. RK4 is only conditionally
/// stable, so `options.dt()` must resolve the fastest LC mode; the tests
/// pick steps well inside the stability region.
///
/// # Panics
///
/// Panics if the tree is empty, any section has zero inductance or zero
/// capacitance (the explicit form needs `E` invertible), or an observed
/// node is out of range.
pub fn simulate_rk4(
    tree: &RlcTree,
    source: &Source,
    options: &SimOptions,
    observe: &[NodeId],
) -> Vec<Waveform> {
    assert!(!tree.is_empty(), "cannot simulate an empty tree");
    for id in tree.node_ids() {
        let s = tree.section(id);
        assert!(
            s.inductance().as_henries() > 0.0 && s.capacitance().as_farads() > 0.0,
            "RK4 state-space form requires positive L and C on every section \
             (section {id} violates this); use simulate_mna instead"
        );
    }
    for &id in observe {
        assert!(
            id.index() < tree.len(),
            "observed node {id} is not in the tree"
        );
    }
    let _span = rlc_obs::span!("sim.rk4");
    rlc_obs::counter!("sim.rk4.calls");
    let n = tree.len();
    let dim = 2 * n;
    let (e, a, b) = descriptor_system(tree);
    // E is diagonal and positive: invert by scaling rows.
    let mut a_ex = Matrix::zeros(dim, dim);
    let mut b_ex = vec![0.0; dim];
    for i in 0..dim {
        let scale = 1.0 / e[(i, i)];
        for j in 0..dim {
            a_ex[(i, j)] = a[(i, j)] * scale;
        }
        b_ex[i] = b[i] * scale;
    }

    let h = options.dt().as_seconds();
    let steps = options.steps();
    let mut x = vec![0.0f64; dim];
    let mut times = Vec::with_capacity(steps + 1);
    let mut recorded: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); observe.len()];
    times.push(Time::ZERO);
    for (slot, &id) in observe.iter().enumerate() {
        recorded[slot].push(x[id.index()]);
    }

    let deriv = |x: &[f64], u: f64, out: &mut Vec<f64>| {
        *out = a_ex.mul_vec(x);
        for (o, &bi) in out.iter_mut().zip(&b_ex) {
            *o += bi * u;
        }
    };

    let mut k1 = Vec::new();
    let mut k2 = Vec::new();
    let mut k3 = Vec::new();
    let mut k4 = Vec::new();
    let mut tmp = vec![0.0; dim];
    for step in 1..=steps {
        let t0 = (step - 1) as f64 * h;
        let u0 = source.value_at(Time::from_seconds(t0));
        let um = source.value_at(Time::from_seconds(t0 + 0.5 * h));
        let u1 = source.value_at(Time::from_seconds(t0 + h));
        deriv(&x, u0, &mut k1);
        for i in 0..dim {
            tmp[i] = x[i] + 0.5 * h * k1[i];
        }
        deriv(&tmp, um, &mut k2);
        for i in 0..dim {
            tmp[i] = x[i] + 0.5 * h * k2[i];
        }
        deriv(&tmp, um, &mut k3);
        for i in 0..dim {
            tmp[i] = x[i] + h * k3[i];
        }
        deriv(&tmp, u1, &mut k4);
        for i in 0..dim {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        times.push(Time::from_seconds(t0 + h));
        for (slot, &id) in observe.iter().enumerate() {
            recorded[slot].push(x[id.index()]);
        }
    }
    rlc_obs::counter!("sim.rk4.steps", steps as u64);
    recorded
        .into_iter()
        .map(|values| Waveform::new(times.clone(), values))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use rlc_tree::{topology, RlcSection};
    use rlc_units::{Capacitance, Inductance, Resistance};

    fn s(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_henries(l),
            Capacitance::from_farads(c),
        )
    }

    #[test]
    fn mna_matches_tree_solver_exactly() {
        // Same discretization → agreement to solver tolerance.
        let (tree, nodes) = topology::fig5(s(25.0, 4e-9, 0.4e-12));
        let options = SimOptions::new(Time::from_picoseconds(2.0), Time::from_nanoseconds(8.0));
        let src = Source::step(1.0);
        let w_tree = simulate(&tree, &src, &options, &[nodes.n7, nodes.n1]);
        let w_mna = simulate_mna(&tree, &src, &options, &[nodes.n7, nodes.n1]);
        for (a, b) in w_tree.iter().zip(&w_mna) {
            assert!(
                a.max_abs_difference(b) < 1e-8,
                "tree vs MNA diff {}",
                a.max_abs_difference(b)
            );
        }
    }

    #[test]
    fn mna_matches_tree_solver_on_rc_tree() {
        // Zero inductance exercises the algebraic branch rows (L = 0 makes
        // the MNA system a DAE).
        let (tree, sink) = topology::single_line(4, s(100.0, 0.0, 1e-12));
        let options = SimOptions::new(Time::from_picoseconds(5.0), Time::from_nanoseconds(10.0));
        let src = Source::step(1.0);
        let w_tree = &simulate(&tree, &src, &options, &[sink])[0];
        let w_mna = &simulate_mna(&tree, &src, &options, &[sink])[0];
        assert!(w_tree.max_abs_difference(w_mna) < 1e-6);
    }

    #[test]
    fn rk4_confirms_both_implicit_solvers() {
        let (tree, sink) = topology::single_line(3, s(30.0, 2e-9, 0.3e-12));
        // RK4 needs a small step for stability; the implicit solvers do not.
        let opt_rk4 = SimOptions::new(Time::from_femtoseconds(20.0), Time::from_nanoseconds(2.0));
        let opt_imp = SimOptions::new(Time::from_picoseconds(0.2), Time::from_nanoseconds(2.0));
        let src = Source::step(1.0);
        let w_rk4 = &simulate_rk4(&tree, &src, &opt_rk4, &[sink])[0];
        let w_tree = &simulate(&tree, &src, &opt_imp, &[sink])[0];
        assert!(
            w_rk4.max_abs_difference(w_tree) < 1e-3,
            "RK4 vs tree solver diff {}",
            w_rk4.max_abs_difference(w_tree)
        );
    }

    #[test]
    fn mna_handles_exponential_source() {
        let (tree, sink) = topology::single_line(2, s(20.0, 1e-9, 0.2e-12));
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(10.0));
        let src = Source::exponential(1.0, Time::from_nanoseconds(1.0));
        let w_tree = &simulate(&tree, &src, &options, &[sink])[0];
        let w_mna = &simulate_mna(&tree, &src, &options, &[sink])[0];
        assert!(w_tree.max_abs_difference(w_mna) < 1e-8);
        assert!((w_mna.last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn mna_branching_tree_agreement() {
        let tree = topology::asymmetric_tree(3, 2.5, s(40.0, 3e-9, 0.25e-12));
        let sinks: Vec<NodeId> = tree.leaves().collect();
        let options = SimOptions::new(Time::from_picoseconds(2.0), Time::from_nanoseconds(10.0));
        let src = Source::step(2.5);
        let w_tree = simulate(&tree, &src, &options, &sinks);
        let w_mna = simulate_mna(&tree, &src, &options, &sinks);
        for (a, b) in w_tree.iter().zip(&w_mna) {
            assert!(a.max_abs_difference(b) < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "positive L and C")]
    fn rk4_rejects_rc_sections() {
        let (tree, sink) = topology::single_line(1, s(1.0, 0.0, 1.0));
        let options = SimOptions::new(Time::from_seconds(0.01), Time::from_seconds(1.0));
        let _ = simulate_rk4(&tree, &Source::step(1.0), &options, &[sink]);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn mna_rejects_empty_tree() {
        let options = SimOptions::new(Time::from_seconds(0.01), Time::from_seconds(1.0));
        let _ = simulate_mna(&rlc_tree::RlcTree::new(), &Source::step(1.0), &options, &[]);
    }
}
