//! Numerical-quality tests for the transient solvers: convergence order,
//! cross-method agreement on random trees, and A-stability behaviour.

use rlc_sim::{mna, simulate, Integration, SimOptions, Source, Waveform};
use rlc_tree::{topology, NodeId, RlcSection, RlcTree};
use rlc_units::{Capacitance, Inductance, Resistance, Time};

fn section(r: f64, l_nh: f64, c_pf: f64) -> RlcSection {
    RlcSection::new(
        Resistance::from_ohms(r),
        Inductance::from_nanohenries(l_nh),
        Capacitance::from_picofarads(c_pf),
    )
}

/// Reference solution at a fixed probe time, from a very fine step.
fn reference(tree: &RlcTree, sink: NodeId, probe: Time) -> f64 {
    let options = SimOptions::new(Time::from_seconds(probe.as_seconds() / 80_000.0), probe);
    simulate(tree, &Source::step(1.0), &options, &[sink])[0].last_value()
}

fn value_at(tree: &RlcTree, sink: NodeId, probe: Time, dt: Time, method: Integration) -> f64 {
    let options = SimOptions::new(dt, probe).with_integration(method);
    simulate(tree, &Source::step(1.0), &options, &[sink])[0].last_value()
}

#[test]
fn trapezoidal_is_second_order_accurate() {
    // Halving the step must cut the error by ~4x. Probe mid-transient
    // where the error is largest.
    let (tree, sink) = topology::single_line(3, section(30.0, 2.0, 0.3));
    let probe = Time::from_picoseconds(200.0);
    let exact = reference(&tree, sink, probe);
    let e1 = (value_at(
        &tree,
        sink,
        probe,
        Time::from_picoseconds(2.0),
        Integration::Trapezoidal,
    ) - exact)
        .abs();
    let e2 = (value_at(
        &tree,
        sink,
        probe,
        Time::from_picoseconds(1.0),
        Integration::Trapezoidal,
    ) - exact)
        .abs();
    let e4 = (value_at(
        &tree,
        sink,
        probe,
        Time::from_picoseconds(0.5),
        Integration::Trapezoidal,
    ) - exact)
        .abs();
    let r12 = e1 / e2;
    let r24 = e2 / e4;
    assert!(
        (3.0..5.5).contains(&r12) && (3.0..5.5).contains(&r24),
        "convergence ratios {r12:.2}, {r24:.2} (errors {e1:.2e}, {e2:.2e}, {e4:.2e})"
    );
}

#[test]
fn backward_euler_is_first_order_accurate() {
    let (tree, sink) = topology::single_line(3, section(30.0, 2.0, 0.3));
    let probe = Time::from_picoseconds(200.0);
    let exact = reference(&tree, sink, probe);
    let e1 = (value_at(
        &tree,
        sink,
        probe,
        Time::from_picoseconds(2.0),
        Integration::BackwardEuler,
    ) - exact)
        .abs();
    let e2 = (value_at(
        &tree,
        sink,
        probe,
        Time::from_picoseconds(1.0),
        Integration::BackwardEuler,
    ) - exact)
        .abs();
    let ratio = e1 / e2;
    assert!(
        (1.6..2.6).contains(&ratio),
        "BE convergence ratio {ratio:.2} (errors {e1:.2e}, {e2:.2e})"
    );
}

#[test]
fn solvers_agree_on_random_trees() {
    use rlc_units::{Capacitance as C, Inductance as L, Resistance as R};
    for seed in 0..8u64 {
        let tree = topology::random_tree(
            seed,
            12,
            (R::from_ohms(5.0), R::from_ohms(80.0)),
            (L::from_picohenries(100.0), L::from_nanohenries(3.0)),
            (C::from_femtofarads(50.0), C::from_picofarads(0.4)),
        );
        let sinks: Vec<NodeId> = tree.leaves().collect();
        let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(8.0));
        let src = Source::step(1.0);
        let w_tree = simulate(&tree, &src, &options, &sinks);
        let w_mna = mna::simulate_mna(&tree, &src, &options, &sinks);
        for (a, b) in w_tree.iter().zip(&w_mna) {
            let diff = a.max_abs_difference(b);
            assert!(diff < 1e-7, "seed {seed}: tree vs MNA diff {diff}");
        }
    }
}

#[test]
fn large_step_remains_stable() {
    // A-stability: even a grossly oversized step must not blow up (it may
    // be inaccurate, but must stay bounded and settle to the right DC).
    let (tree, sink) = topology::single_line(4, section(10.0, 8.0, 0.5));
    for method in [Integration::Trapezoidal, Integration::BackwardEuler] {
        let options = SimOptions::new(
            Time::from_nanoseconds(1.0), // ≫ the LC period
            Time::from_nanoseconds(400.0),
        )
        .with_integration(method);
        let w = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        assert!(
            w.values().iter().all(|v| v.abs() < 3.0),
            "{method:?} diverged"
        );
        assert!(
            (w.last_value() - 1.0).abs() < 0.05,
            "{method:?} settled to {}",
            w.last_value()
        );
    }
}

#[test]
fn backward_euler_damps_trapezoidal_ringing_artifacts() {
    // With a large step on a stiff circuit, trapezoidal rings numerically
    // (±1 oscillation factor per step); BE damps. Quantify: BE's waveform
    // total variation is smaller at equal (too-large) steps.
    let (tree, sink) = topology::single_line(2, section(1.0, 10.0, 0.5));
    let dt = Time::from_picoseconds(300.0);
    let t_stop = Time::from_nanoseconds(60.0);
    let tv = |w: &Waveform| -> f64 { w.values().windows(2).map(|p| (p[1] - p[0]).abs()).sum() };
    let w_tr = &simulate(
        &tree,
        &Source::step(1.0),
        &SimOptions::new(dt, t_stop),
        &[sink],
    )[0];
    let w_be = &simulate(
        &tree,
        &Source::step(1.0),
        &SimOptions::new(dt, t_stop).with_integration(Integration::BackwardEuler),
        &[sink],
    )[0];
    assert!(
        tv(w_be) < tv(w_tr),
        "BE total variation {} should be below trapezoidal {}",
        tv(w_be),
        tv(w_tr)
    );
}

#[test]
fn rk4_matches_trapezoidal_on_smooth_input() {
    // Smooth (ramp) input avoids the t=0 jump: all three methods agree.
    let (tree, sink) = topology::single_line(3, section(25.0, 1.5, 0.25));
    let src = Source::ramp(1.0, Time::from_picoseconds(300.0));
    let opt_imp = SimOptions::new(Time::from_picoseconds(0.2), Time::from_nanoseconds(3.0));
    let opt_rk4 = SimOptions::new(Time::from_femtoseconds(25.0), Time::from_nanoseconds(3.0));
    let w_tr = &simulate(&tree, &src, &opt_imp, &[sink])[0];
    let w_rk = &mna::simulate_rk4(&tree, &src, &opt_rk4, &[sink])[0];
    assert!(
        w_tr.max_abs_difference(w_rk) < 5e-4,
        "diff {}",
        w_tr.max_abs_difference(w_rk)
    );
}

#[test]
fn energy_conservation_in_lossless_limit() {
    // A near-lossless LC line rings for a long time without amplitude
    // growth (trapezoidal conserves the discrete energy). Peak amplitude
    // in the last quarter of the run must not exceed the first peak.
    let (tree, sink) = topology::single_line(2, section(0.001, 10.0, 0.5));
    let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(200.0));
    let w = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
    let n = w.len();
    let early_peak = w.values()[..n / 4].iter().cloned().fold(0.0f64, f64::max);
    let late_peak = w.values()[3 * n / 4..]
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    assert!(early_peak > 1.5, "should ring strongly, peak {early_peak}");
    assert!(
        late_peak <= early_peak * 1.001,
        "amplitude must not grow: early {early_peak}, late {late_peak}"
    );
}
