//! Regression tests for typed waveform-metric failures.
//!
//! The differential harness in `rlc-verify` measures simulated responses
//! with the `try_*` extraction APIs; these tests pin the failure taxonomy
//! on real simulations: a response that never crosses its measurement
//! level must be a typed [`MetricError::NoCrossing`], and degenerate
//! source-only / zero-load trees must measure cleanly rather than panic.

use rlc_sim::{simulate, MetricError, SimOptions, Source};
use rlc_tree::{topology, RlcSection, RlcTree};
use rlc_units::{Capacitance, Inductance, Resistance, Time};

fn section(r: f64, l: f64, c: f64) -> RlcSection {
    RlcSection::new(
        Resistance::from_ohms(r),
        Inductance::from_henries(l),
        Capacitance::from_farads(c),
    )
}

#[test]
fn monotone_below_50_percent_is_a_typed_no_crossing() {
    // τ = 1 s observed for only 0.2 s: the response tops out near 18%,
    // monotone and far below the 50% level.
    let (tree, sink) = topology::single_line(1, section(1.0, 0.0, 1.0));
    let options = SimOptions::new(Time::from_seconds(1e-3), Time::from_seconds(0.2));
    let wave = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];

    assert!(wave.last_value() < 0.5, "premise: still below 50%");
    let err = wave.try_delay_50(1.0).unwrap_err();
    assert_eq!(err, MetricError::NoCrossing { level: 0.5 });
    assert!(err.to_string().contains("never rises"), "{err}");

    // 10% was crossed but 90% was not; the error names the missing level.
    let err = wave.try_rise_time_10_90(1.0).unwrap_err();
    assert_eq!(err, MetricError::NoCrossing { level: 0.9 });

    // Still far outside a ±10% band around the final value.
    let err = wave.try_settling_time(1.0, 0.1).unwrap_err();
    assert_eq!(err, MetricError::NotSettled { band: 0.1 });

    // The Option-returning API agrees with the typed one.
    assert_eq!(wave.delay_50(1.0), None);
}

#[test]
fn source_only_zero_load_tree_measures_cleanly() {
    // A single resistive section with no shunt capacitance: no dynamics at
    // all, the node tracks the source from the first sample.
    let mut tree = RlcTree::new();
    let sink = tree.add_root_section(section(25.0, 0.0, 0.0));
    let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_picoseconds(100.0));
    let wave = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];

    assert!((wave.last_value() - 1.0).abs() < 1e-9);
    // Starts at the level, so the crossing is the first sample.
    assert_eq!(wave.try_delay_50(1.0).unwrap(), Time::ZERO);
    assert_eq!(wave.try_settling_time(1.0, 0.1).unwrap(), Time::ZERO);
    assert_eq!(wave.try_overshoot_fraction(1.0).unwrap(), 0.0);
}

#[test]
fn invalid_references_are_typed_not_panics() {
    let (tree, sink) = topology::single_line(1, section(1.0, 0.0, 1.0));
    let options = SimOptions::new(Time::from_seconds(0.1), Time::from_seconds(5.0));
    let wave = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];

    for bad in [0.0, f64::NAN, f64::INFINITY] {
        assert!(
            matches!(
                wave.try_delay_50(bad),
                Err(MetricError::InvalidFinalValue { .. })
            ),
            "v_final = {bad}"
        );
        assert!(matches!(
            wave.try_overshoot_fraction(bad),
            Err(MetricError::InvalidFinalValue { .. })
        ));
        assert!(matches!(
            wave.try_settling_time(bad, 0.1),
            Err(MetricError::InvalidFinalValue { .. })
        ));
    }
    for bad_band in [0.0, 1.0, -0.2, f64::NAN] {
        assert!(matches!(
            wave.try_settling_time(1.0, bad_band),
            Err(MetricError::InvalidBand { .. })
        ));
    }
}

#[test]
fn typed_and_legacy_metrics_agree_on_a_healthy_response() {
    let (tree, sink) = topology::single_line(3, section(20.0, 1e-9, 0.3e-12));
    let options = SimOptions::new(Time::from_femtoseconds(100.0), Time::from_nanoseconds(3.0));
    let wave = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];

    assert_eq!(wave.try_delay_50(1.0).ok(), wave.delay_50(1.0));
    assert_eq!(
        wave.try_rise_time_10_90(1.0).ok(),
        wave.rise_time_10_90(1.0)
    );
    assert_eq!(
        wave.try_settling_time(1.0, 0.1).ok(),
        wave.settling_time(1.0, 0.1)
    );
    assert_eq!(
        wave.try_overshoot_fraction(1.0).unwrap(),
        wave.overshoot_fraction(1.0)
    );
}
