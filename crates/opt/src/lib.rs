//! Interconnect optimization on top of the equivalent Elmore delay model.
//!
//! The paper's stated purpose for a closed-form, continuous RLC delay model
//! is to power the *synthesis* loops that the classic Elmore delay powers
//! for RC nets — buffer/repeater insertion, wire sizing, and clock network
//! design (Section I and references \\[17\]–[28\]). This crate provides those
//! loops, implemented directly on [`eed`]'s model:
//!
//! * [`repeater`] — uniform repeater insertion on long wires: stage-delay
//!   evaluation, joint (count, size) optimization, and the classic
//!   RC-only Bakoğlu closed form as a baseline. Reproduces the qualitative
//!   finding of the authors' follow-on work (TVLSI 2000): inductance
//!   reduces the optimal number of repeaters.
//! * [`buffering`] — van Ginneken's optimal buffer-placement dynamic
//!   program for trees (the paper's reference \[27\]), with RLC re-timing of
//!   the chosen placement.
//! * [`sizing`] — continuous wire sizing by golden-section search on the
//!   closed-form delay.
//! * [`skew`] — clock-skew reports over the sinks of a distribution tree.
//! * [`fom`] — the authors' companion figures of merit [DAC 1998] for
//!   deciding *when* inductance matters at all.
//!
//! # Examples
//!
//! Decide whether a 5 mm clock spine needs RLC analysis, then size
//! repeaters for it:
//!
//! ```
//! use rlc_tree::wire::WireModel;
//! use rlc_units::Time;
//! use rlc_opt::{fom, repeater};
//!
//! let wire = WireModel::CLOCK_SPINE;
//! let rise = Time::from_picoseconds(40.0);
//! let window = fom::inductance_window(&wire, rise).expect("low-R wire has a window");
//! assert!(fom::is_inductance_significant(&wire, 5000.0, rise));
//!
//! let lib = repeater::Repeater::typical_cmos_250nm();
//! let plan = repeater::optimize(&wire, 5000.0, &lib);
//! assert!(plan.count >= 1);
//! println!("{} repeaters of size {:.1}, delay {}", plan.count, plan.size, plan.delay);
//! # let _ = window;
//! ```

pub mod buffering;
pub mod fom;
pub mod repeater;
pub mod search;
pub mod sizing;
pub mod skew;
