//! Uniform repeater insertion on long wires.
//!
//! A long resistive wire's delay grows quadratically with length; breaking
//! it into `k` stages separated by repeaters restores linear growth. The
//! optimization couples the repeater count `k` and size `h` (in multiples
//! of a minimum inverter). The classic closed forms (Bakoğlu) assume RC
//! wires; with inductance the wire's own delay grows more slowly than RC
//! (time-of-flight floor), so **fewer repeaters are optimal** — the central
//! observation of the authors' follow-on repeater study (TVLSI 2000). Here
//! the stage delay is evaluated with the paper's model, so that effect
//! falls out naturally.

use eed::TreeAnalysis;
use rlc_tree::wire::WireModel;
use rlc_tree::RlcTree;
use rlc_units::{Capacitance, Resistance, Time};

use crate::search::golden_min;

/// A repeater (inverter) characterized at unit size.
///
/// Scaling a repeater by `h` divides its output resistance by `h` and
/// multiplies both capacitances by `h`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Repeater {
    /// Output (channel) resistance at unit size.
    pub resistance: Resistance,
    /// Gate input capacitance at unit size.
    pub input_capacitance: Capacitance,
    /// Drain/output capacitance at unit size.
    pub output_capacitance: Capacitance,
}

impl Repeater {
    /// A representative late-1990s 0.25 µm CMOS inverter: 3 kΩ output
    /// resistance, 2 fF input capacitance, 1.5 fF output capacitance at
    /// unit size.
    pub fn typical_cmos_250nm() -> Self {
        Self {
            resistance: Resistance::from_kiloohms(3.0),
            input_capacitance: Capacitance::from_femtofarads(2.0),
            output_capacitance: Capacitance::from_femtofarads(1.5),
        }
    }

    /// Creates a repeater from its unit-size parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    pub fn new(
        resistance: Resistance,
        input_capacitance: Capacitance,
        output_capacitance: Capacitance,
    ) -> Self {
        assert!(
            resistance.is_finite() && resistance.as_ohms() > 0.0,
            "repeater resistance must be positive and finite"
        );
        assert!(
            input_capacitance.is_finite() && input_capacitance.as_farads() > 0.0,
            "repeater input capacitance must be positive and finite"
        );
        assert!(
            output_capacitance.is_finite() && output_capacitance.as_farads() >= 0.0,
            "repeater output capacitance must be non-negative and finite"
        );
        Self {
            resistance,
            input_capacitance,
            output_capacitance,
        }
    }
}

/// A repeater insertion plan: `count` repeaters of relative size `size`,
/// and the resulting end-to-end 50% delay predicted by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insertion {
    /// Number of stages (count = 1 means a single driver, no intermediate
    /// repeaters).
    pub count: usize,
    /// Repeater size in multiples of the unit inverter.
    pub size: f64,
    /// Predicted end-to-end 50% delay.
    pub delay: Time,
}

/// Number of lumped sections used per wire stage in delay evaluation.
const SEGMENTS_PER_STAGE: usize = 6;

/// The 50% delay of **one** repeater stage: a size-`h` repeater driving
/// `stage_len_um` of `wire` into the input capacitance of the next
/// (size-`h`) repeater.
///
/// The stage is modeled as an RLC tree: a driver section carrying the
/// repeater's output resistance and output capacitance, the lumped wire,
/// and the receiver's input capacitance added at the far node — exactly
/// how the paper's model is meant to be embedded in a repeater loop.
///
/// # Panics
///
/// Panics if `h` or `stage_len_um` is not positive and finite.
pub fn stage_delay(wire: &WireModel, stage_len_um: f64, h: f64, lib: &Repeater) -> Time {
    assert!(h.is_finite() && h > 0.0, "repeater size must be positive");
    assert!(
        stage_len_um.is_finite() && stage_len_um > 0.0,
        "stage length must be positive"
    );
    let mut tree = RlcTree::new();
    // Driver: pure-R section with the repeater's output capacitance at its
    // node (inductance of the device itself is negligible).
    let driver = rlc_tree::RlcSection::rc(lib.resistance / h, lib.output_capacitance * h);
    let driver_node = tree.add_root_section(driver);
    let far = wire.route(
        &mut tree,
        Some(driver_node),
        stage_len_um,
        SEGMENTS_PER_STAGE,
    );
    let sec = tree.section_mut(far);
    *sec = sec.with_added_capacitance(lib.input_capacitance * h);
    TreeAnalysis::new(&tree).delay_50(far)
}

/// End-to-end delay of `count` equal stages covering `length_um`.
///
/// # Panics
///
/// Same conditions as [`stage_delay`]; additionally `count ≥ 1`.
pub fn total_delay(wire: &WireModel, length_um: f64, count: usize, h: f64, lib: &Repeater) -> Time {
    assert!(count >= 1, "at least one driving stage is required");
    stage_delay(wire, length_um / count as f64, h, lib) * count as f64
}

/// Finds the `(count, size)` pair minimizing the end-to-end delay, scanning
/// stage counts and golden-section-searching the size for each.
///
/// The search covers `count ∈ [1, 64]` and `size ∈ [1, 1000]`, ample for
/// on-chip wires up to centimetres.
pub fn optimize(wire: &WireModel, length_um: f64, lib: &Repeater) -> Insertion {
    let mut best = Insertion {
        count: 1,
        size: 1.0,
        delay: Time::from_seconds(f64::INFINITY),
    };
    let mut worse_streak = 0;
    for count in 1..=64 {
        let (size, delay) = golden_min(1.0, 1000.0, |h| {
            total_delay(wire, length_um, count, h, lib).as_seconds()
        });
        if delay < best.delay.as_seconds() {
            best = Insertion {
                count,
                size,
                delay: Time::from_seconds(delay),
            };
            worse_streak = 0;
        } else {
            worse_streak += 1;
            if worse_streak >= 4 {
                // Delay is convex in the stage count; stop once clearly past
                // the optimum.
                break;
            }
        }
    }
    best
}

/// The classic RC-only Bakoğlu closed form:
/// `k = √(0.4·R_t·C_t / (0.7·R_0·C_0))`, `h = √(R_0·C_t / (R_t·C_0))`,
/// where `R_t, C_t` are wire totals and `R_0, C_0` the unit repeater's
/// resistance and input capacitance.
///
/// Used as the baseline the RLC-aware optimization is compared against.
///
/// # Panics
///
/// Panics if `length_um` is not positive and finite.
pub fn bakoglu_rc(wire: &WireModel, length_um: f64, lib: &Repeater) -> (f64, f64) {
    assert!(
        length_um.is_finite() && length_um > 0.0,
        "length must be positive"
    );
    let rt = (wire.resistance_per_um() * length_um).as_ohms();
    let ct = (wire.capacitance_per_um() * length_um).as_farads();
    let r0 = lib.resistance.as_ohms();
    let c0 = lib.input_capacitance.as_farads();
    let k = (0.4 * rt * ct / (0.7 * r0 * c0)).sqrt();
    let h = (r0 * ct / (rt * c0)).sqrt();
    (k, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_delay_shrinks_with_bigger_repeaters_up_to_a_point() {
        let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
        let lib = Repeater::typical_cmos_250nm();
        let d1 = stage_delay(&wire, 1000.0, 1.0, &lib);
        let d20 = stage_delay(&wire, 1000.0, 20.0, &lib);
        assert!(d20 < d1, "larger repeater should drive the wire faster");
        // But enormous repeaters self-load.
        let d5000 = stage_delay(&wire, 1000.0, 5000.0, &lib);
        assert!(d5000 > d20, "oversized repeater should be slower");
    }

    #[test]
    fn repeaters_help_long_resistive_wires() {
        let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
        let lib = Repeater::typical_cmos_250nm();
        let unrepeated = total_delay(&wire, 10_000.0, 1, 30.0, &lib);
        let plan = optimize(&wire, 10_000.0, &lib);
        assert!(plan.count > 1, "a 1 cm minimum-width wire needs repeaters");
        assert!(plan.delay < unrepeated);
    }

    #[test]
    fn optimum_is_locally_optimal() {
        let wire = WireModel::IBM_COPPER_GLOBAL;
        let lib = Repeater::typical_cmos_250nm();
        let plan = optimize(&wire, 8_000.0, &lib);
        let d = |k: usize, h: f64| total_delay(&wire, 8_000.0, k, h, &lib);
        // Perturbing the count or size does not improve the delay.
        if plan.count > 1 {
            assert!(d(plan.count - 1, plan.size) >= plan.delay);
        }
        assert!(d(plan.count + 1, plan.size) >= plan.delay * 0.999);
        assert!(d(plan.count, plan.size * 1.3) >= plan.delay);
        assert!(d(plan.count, plan.size / 1.3) >= plan.delay);
    }

    #[test]
    fn inductance_reduces_optimal_repeater_count() {
        // The follow-on paper's headline: RC-only sizing over-inserts.
        let lib = Repeater::typical_cmos_250nm();
        let rlc_wire = WireModel::CLOCK_SPINE;
        let rc_wire = WireModel::new(
            rlc_wire.resistance_per_um(),
            rlc_units::Inductance::ZERO,
            rlc_wire.capacitance_per_um(),
        );
        let length = 15_000.0;
        let plan_rlc = optimize(&rlc_wire, length, &lib);
        let plan_rc = optimize(&rc_wire, length, &lib);
        assert!(
            plan_rlc.count <= plan_rc.count,
            "inductance should not increase the optimal count: RLC {} vs RC {}",
            plan_rlc.count,
            plan_rc.count
        );
    }

    #[test]
    fn bakoglu_matches_rc_search_within_tolerance() {
        // On a purely RC wire, the numerical optimum should land near the
        // closed form (the closed form uses the 0.4/0.7 Elmore-ramp
        // coefficients, so agreement is approximate).
        let lib = Repeater::typical_cmos_250nm();
        let wire = WireModel::new(
            WireModel::MINIMUM_WIDTH_SIGNAL.resistance_per_um(),
            rlc_units::Inductance::ZERO,
            WireModel::MINIMUM_WIDTH_SIGNAL.capacitance_per_um(),
        );
        let length = 12_000.0;
        let (k_formula, h_formula) = bakoglu_rc(&wire, length, &lib);
        let plan = optimize(&wire, length, &lib);
        assert!(
            (plan.count as f64 - k_formula).abs() <= k_formula * 0.5 + 1.0,
            "count {} vs formula {k_formula}",
            plan.count
        );
        assert!(
            plan.size / h_formula > 0.4 && plan.size / h_formula < 2.5,
            "size {} vs formula {h_formula}",
            plan.size
        );
    }

    #[test]
    fn optimized_plan_validates_against_simulation() {
        // Build the full repeated line as separate stage trees and check
        // the predicted stage delay against the transient simulator.
        let wire = WireModel::IBM_COPPER_GLOBAL;
        let lib = Repeater::typical_cmos_250nm();
        let plan = optimize(&wire, 6_000.0, &lib);
        let stage_len = 6_000.0 / plan.count as f64;

        let mut tree = RlcTree::new();
        let driver = rlc_tree::RlcSection::rc(
            lib.resistance / plan.size,
            lib.output_capacitance * plan.size,
        );
        let root = tree.add_root_section(driver);
        let far = wire.route(&mut tree, Some(root), stage_len, SEGMENTS_PER_STAGE);
        let sec = tree.section_mut(far);
        *sec = sec.with_added_capacitance(lib.input_capacitance * plan.size);

        let model_delay = stage_delay(&wire, stage_len, plan.size, &lib);
        let options = rlc_sim::SimOptions::new(
            rlc_units::Time::from_seconds(model_delay.as_seconds() / 300.0),
            rlc_units::Time::from_seconds(model_delay.as_seconds() * 40.0),
        );
        let wave = &rlc_sim::simulate(&tree, &rlc_sim::Source::step(1.0), &options, &[far])[0];
        let sim = wave.delay_50(1.0).expect("crosses 50%");
        let err = ((model_delay - sim).as_seconds() / sim.as_seconds()).abs();
        assert!(err < 0.15, "stage delay error {err}");
    }

    #[test]
    #[should_panic(expected = "repeater size must be positive")]
    fn stage_delay_rejects_zero_size() {
        let _ = stage_delay(
            &WireModel::IBM_COPPER_GLOBAL,
            100.0,
            0.0,
            &Repeater::typical_cmos_250nm(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one driving stage")]
    fn total_delay_rejects_zero_count() {
        let _ = total_delay(
            &WireModel::IBM_COPPER_GLOBAL,
            100.0,
            0,
            1.0,
            &Repeater::typical_cmos_250nm(),
        );
    }

    #[test]
    #[should_panic(expected = "input capacitance must be positive")]
    fn repeater_validates_parameters() {
        let _ = Repeater::new(
            Resistance::from_ohms(100.0),
            Capacitance::ZERO,
            Capacitance::ZERO,
        );
    }
}
