//! Scalar search primitives for the optimization loops.
//!
//! The golden-section kernel itself lives in
//! [`rlc_numeric::minimize`] so that crates below `rlc-opt` in the
//! dependency graph (notably `rlc-synth`, which `rlc-engine` builds on)
//! can run the *same* width search with identical bracketing arithmetic.
//! This module re-exports it under the name the optimization loops use.

pub use rlc_numeric::minimize::golden_min;
