//! Van Ginneken buffer insertion in RLC trees.
//!
//! Van Ginneken's dynamic program (reference \[27\] of the paper: *Buffer
//! placement in distributed RC-tree networks for minimal Elmore delay*,
//! ISCAS 1990) is the canonical consumer of Elmore-style delay models: a
//! bottom-up sweep keeps, at every candidate location, the set of
//! non-dominated `(load capacitance, delay)` options over all buffer
//! placements in the subtree, and the source picks the best.
//!
//! **Placement convention**: "a buffer on node `b`" sits at the *top* of
//! section `b` — between `b`'s parent node and the section — so the
//! upstream stage sees only the buffer's input capacitance at the parent
//! node, and the buffer drives section `b` plus everything below it.
//!
//! The DP runs on classic **Elmore (RC) time constants** — the additive
//! decomposition the optimality argument needs — while [`evaluate`]
//! re-times any placement with the paper's full RLC model, stage by
//! stage. Comparing the two is exactly the workflow the paper proposes:
//! optimize with a fast fidelity-preserving model, verify with a better
//! one. [`PlacementTimer`] amortizes that re-timing across a buffer-size
//! sweep — the stage decomposition is built once and only the
//! size-dependent sections are edited per candidate, via
//! [`rlc_engine::IncrementalAnalysis`] — powering
//! [`optimal_buffer_size`].

use eed::TreeAnalysis;
use rlc_engine::IncrementalAnalysis;
use rlc_tree::{NodeId, RlcSection, RlcTree};
use rlc_units::{Capacitance, Resistance, Time};

use crate::search::golden_min;

use crate::repeater::Repeater;

/// A buffer-insertion result: where to place buffers and the predicted
/// source-to-worst-sink **Elmore time constant** (multiply by ln 2 for an
/// RC 50% delay estimate; use [`evaluate`] for the RLC 50% delay).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferingSolution {
    /// Nodes carrying a buffer at the top of their section.
    pub buffers: Vec<NodeId>,
    /// Elmore time constant from the driver to the slowest sink.
    pub elmore_delay: Time,
}

/// One DP option: driving this (partially buffered) subtree presents
/// capacitance `cap` and incurs worst-path Elmore constant `delay`.
#[derive(Debug, Clone)]
struct Candidate {
    cap: Capacitance,
    delay: Time,
    buffers: Vec<NodeId>,
}

/// Runs van Ginneken's algorithm on `tree`.
///
/// Buffers (size-`buffer_size` instances of `lib`) may be inserted at the
/// top of any section; the tree is driven by a source with output
/// resistance `driver_resistance`. Minimizes the worst source→sink Elmore
/// constant. Runtime is O(n·k²) for option-list length k (pruned to
/// non-dominated candidates), comfortably fast for nets of thousands of
/// sections.
///
/// # Panics
///
/// Panics if the tree is empty, `driver_resistance` is not positive, or
/// `buffer_size` is not positive.
pub fn van_ginneken(
    tree: &RlcTree,
    driver_resistance: Resistance,
    lib: &Repeater,
    buffer_size: f64,
) -> BufferingSolution {
    assert!(!tree.is_empty(), "cannot buffer an empty tree");
    assert!(
        driver_resistance.as_ohms() > 0.0,
        "driver resistance must be positive"
    );
    assert!(buffer_size > 0.0, "buffer size must be positive");

    let r_buf = lib.resistance / buffer_size;
    let c_in = lib.input_capacitance * buffer_size;
    let c_out = lib.output_capacitance * buffer_size;

    // options[node] = non-dominated candidates for the subtree rooted at
    // section `node`, as seen from the node's parent.
    let mut options: Vec<Vec<Candidate>> = vec![Vec::new(); tree.len()];

    for id in tree.postorder() {
        // Merge children candidates at this node, starting from the node's
        // own shunt capacitance.
        let mut merged = vec![Candidate {
            cap: tree.section(id).capacitance(),
            delay: Time::ZERO,
            buffers: Vec::new(),
        }];
        for &child in tree.children(id) {
            let mut next = Vec::new();
            for m in &merged {
                for c in &options[child.index()] {
                    next.push(Candidate {
                        cap: m.cap + c.cap,
                        delay: m.delay.max(c.delay),
                        buffers: concat(&m.buffers, &c.buffers),
                    });
                }
            }
            merged = prune(next);
        }

        // Traverse section `id`: Elmore adds R_id·(everything downstream).
        let r = tree.section(id).resistance();
        let mut at_top: Vec<Candidate> = merged
            .into_iter()
            .map(|m| Candidate {
                delay: m.delay + r * m.cap,
                ..m
            })
            .collect();
        // Optionally place a buffer at the top of the section: the buffer
        // absorbs the whole downstream load and presents c_in upstream.
        let buffered: Vec<Candidate> = at_top
            .iter()
            .map(|m| Candidate {
                cap: c_in,
                delay: m.delay + r_buf * (c_out + m.cap),
                buffers: {
                    let mut b = m.buffers.clone();
                    b.push(id);
                    b
                },
            })
            .collect();
        at_top.extend(buffered);
        options[id.index()] = prune(at_top);
    }

    // Source: merge root candidates; the driver charges the total load.
    let mut merged = vec![Candidate {
        cap: Capacitance::ZERO,
        delay: Time::ZERO,
        buffers: Vec::new(),
    }];
    for &root in tree.roots() {
        let mut next = Vec::new();
        for m in &merged {
            for r in &options[root.index()] {
                next.push(Candidate {
                    cap: m.cap + r.cap,
                    delay: m.delay.max(r.delay),
                    buffers: concat(&m.buffers, &r.buffers),
                });
            }
        }
        merged = prune(next);
    }
    let best = merged
        .into_iter()
        .map(|opt| Candidate {
            delay: opt.delay + driver_resistance * opt.cap,
            ..opt
        })
        .min_by(|a, b| a.delay.partial_cmp(&b.delay).expect("finite delays"))
        .expect("non-empty tree yields at least one candidate");

    let mut buffers = best.buffers;
    buffers.sort_unstable();
    buffers.dedup();
    BufferingSolution {
        buffers,
        elmore_delay: best.delay,
    }
}

fn concat(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Keeps the non-dominated candidates: after sorting by capacitance,
/// delays must strictly decrease.
fn prune(mut opts: Vec<Candidate>) -> Vec<Candidate> {
    opts.sort_by(|a, b| {
        a.cap
            .partial_cmp(&b.cap)
            .expect("finite caps")
            .then(a.delay.partial_cmp(&b.delay).expect("finite delays"))
    });
    let mut kept: Vec<Candidate> = Vec::with_capacity(opts.len());
    for o in opts {
        if kept.last().is_none_or(|prev| o.delay < prev.delay) {
            kept.push(o);
        }
    }
    kept
}

/// Independent Elmore-constant computation for a given placement (used for
/// verification and by callers that want to score hand-made placements).
///
/// Assumes the source drives a single root (the common net shape); with
/// multiple roots the driver term uses the total load, handled too.
///
/// # Panics
///
/// Panics if the tree is empty or any buffer id is out of range.
pub fn elmore_delay_of(
    tree: &RlcTree,
    buffers: &[NodeId],
    driver_resistance: Resistance,
    lib: &Repeater,
    buffer_size: f64,
) -> Time {
    assert!(!tree.is_empty(), "cannot evaluate an empty tree");
    let is_buf = buffer_flags(tree, buffers);
    let r_buf = lib.resistance / buffer_size;
    let c_in = lib.input_capacitance * buffer_size;
    let c_out = lib.output_capacitance * buffer_size;

    // Downstream capacitance within each stage (buffered subtrees replaced
    // by c_in at their parent).
    let mut stage_cap = vec![Capacitance::ZERO; tree.len()];
    for id in tree.postorder() {
        let mut c = tree.section(id).capacitance();
        for &ch in tree.children(id) {
            c += if is_buf[ch.index()] {
                c_in
            } else {
                stage_cap[ch.index()]
            };
        }
        stage_cap[id.index()] = c;
    }
    // The source's total load.
    let source_load: Capacitance = tree
        .roots()
        .iter()
        .map(|&r| {
            if is_buf[r.index()] {
                c_in
            } else {
                stage_cap[r.index()]
            }
        })
        .sum();

    let mut arrival = vec![Time::ZERO; tree.len()];
    let mut worst = Time::ZERO;
    for id in tree.preorder() {
        let at_section_top = match tree.parent(id) {
            None => driver_resistance * source_load,
            Some(p) => arrival[p.index()],
        };
        let entry = if is_buf[id.index()] {
            at_section_top + r_buf * (c_out + stage_cap[id.index()])
        } else {
            at_section_top
        };
        arrival[id.index()] = entry + tree.section(id).resistance() * stage_cap[id.index()];
        if tree.is_leaf(id) {
            worst = worst.max(arrival[id.index()]);
        }
    }
    worst
}

/// Re-times a buffer placement with the paper's RLC model: the buffered
/// net decomposes into stages (source → first buffers, each buffer → the
/// next), each timed with [`TreeAnalysis`]; returns the worst source→sink
/// 50% delay.
///
/// # Panics
///
/// Panics if the tree is empty, any buffer id is out of range, or
/// `buffer_size` is not positive.
pub fn evaluate(
    tree: &RlcTree,
    buffers: &[NodeId],
    driver_resistance: Resistance,
    lib: &Repeater,
    buffer_size: f64,
) -> Time {
    assert!(!tree.is_empty(), "cannot evaluate an empty tree");
    assert!(buffer_size > 0.0, "buffer size must be positive");
    let is_buf = buffer_flags(tree, buffers);
    let r_buf = lib.resistance / buffer_size;
    let c_in = lib.input_capacitance * buffer_size;
    let c_out = lib.output_capacitance * buffer_size;

    // A stage: one driver (the source or a buffer) and the unbuffered
    // region it drives, with c_in loads where deeper buffers attach.
    struct Stage {
        /// Original-tree sections whose top connects to the stage driver.
        roots: Vec<NodeId>,
        /// When the stage driver *is* the buffer of its (single) root, the
        /// root must be expanded even though it is flagged as buffered.
        driver_is_roots_buffer: bool,
        driver_r: Resistance,
        driver_c: Capacitance,
        /// Arrival time at the stage driver's input.
        arrival: Time,
    }

    let mut worst = Time::ZERO;
    let mut queue = vec![Stage {
        roots: tree.roots().to_vec(),
        driver_is_roots_buffer: false,
        driver_r: driver_resistance,
        driver_c: Capacitance::ZERO,
        arrival: Time::ZERO,
    }];

    while let Some(job) = queue.pop() {
        // Build the stage tree: a driver section, then the unbuffered
        // expansion; buffered attachment points become c_in loads and
        // spawn follow-up stages.
        let mut stage = RlcTree::new();
        let expand_root = |r: &NodeId| job.driver_is_roots_buffer || !is_buf[r.index()];
        let buffered_at_driver: Vec<NodeId> = job
            .roots
            .iter()
            .copied()
            .filter(|r| !expand_root(r))
            .collect();
        let driver_section = RlcSection::rc(
            job.driver_r,
            job.driver_c + c_in * buffered_at_driver.len() as f64,
        );
        let driver_node = stage.add_root_section(driver_section);

        // (original node, stage parent) — expand unbuffered regions.
        let mut mapping: Vec<(NodeId, NodeId)> = Vec::new(); // (stage, original)
        let mut stack: Vec<(NodeId, NodeId)> = job
            .roots
            .iter()
            .filter(|r| expand_root(r))
            .map(|&r| (r, driver_node))
            .collect();
        while let Some((orig, parent)) = stack.pop() {
            let buffered_children = tree
                .children(orig)
                .iter()
                .filter(|c| is_buf[c.index()])
                .count();
            let section = tree
                .section(orig)
                .with_added_capacitance(c_in * buffered_children as f64);
            let new_id = stage.add_section(parent, section);
            mapping.push((new_id, orig));
            for &child in tree.children(orig) {
                if !is_buf[child.index()] {
                    stack.push((child, new_id));
                }
            }
        }

        let timing = TreeAnalysis::new(&stage);
        // Arrival helper for a stage node (the driver node included).
        let arrive = |stage_id: NodeId| job.arrival + timing.delay_50(stage_id);

        // Buffers hanging directly off the stage driver.
        for b in buffered_at_driver {
            queue.push(Stage {
                roots: vec![b],
                driver_is_roots_buffer: true,
                driver_r: r_buf,
                driver_c: c_out,
                arrival: arrive(driver_node),
            });
        }
        for &(stage_id, orig) in &mapping {
            if tree.is_leaf(orig) {
                worst = worst.max(arrive(stage_id));
            }
            for &child in tree.children(orig) {
                if is_buf[child.index()] {
                    queue.push(Stage {
                        roots: vec![child],
                        driver_is_roots_buffer: true,
                        driver_r: r_buf,
                        driver_c: c_out,
                        arrival: arrive(stage_id),
                    });
                }
            }
        }
    }
    worst
}

/// One stage of a [`PlacementTimer`]'s pre-built decomposition.
#[derive(Debug)]
struct StagePlan {
    analysis: IncrementalAnalysis,
    /// The driver section (stage-tree root); re-parameterized per size.
    driver_node: NodeId,
    /// `false` only for the source stage (whose driver R is fixed).
    driver_is_buffer: bool,
    /// Buffers hanging directly off the stage driver (each adds `c_in`).
    buffered_at_driver: usize,
    /// Stage nodes with buffered children: `(node, bare section, count)`;
    /// re-parameterized per size with `count · c_in` of extra load.
    loaded: Vec<(NodeId, RlcSection, usize)>,
    /// Stage nodes that are leaves of the *original* tree.
    sinks: Vec<NodeId>,
    /// `(parent stage index, attach node in that stage)`; `None` for the
    /// source stage. Parents always precede children in the stage list.
    parent: Option<(usize, NodeId)>,
}

/// Re-times one buffer placement across many buffer sizes without
/// rebuilding the stage decomposition.
///
/// [`evaluate`] rebuilds every stage tree and runs a from-scratch
/// [`TreeAnalysis`] per call — fine for scoring one placement, wasteful
/// inside a size search where only the buffer-dependent sections (the
/// stage drivers and the `c_in` attachment loads) change between
/// candidates. `PlacementTimer` builds the stage decomposition once and
/// each [`delay_with_size`](Self::delay_with_size) call edits just those
/// sections through [`IncrementalAnalysis`]. Debug builds cross-check
/// every call against [`evaluate`]; the two are bit-identical.
///
/// # Examples
///
/// ```
/// use rlc_opt::buffering::{evaluate, van_ginneken, PlacementTimer};
/// use rlc_opt::repeater::Repeater;
/// use rlc_tree::topology;
/// use rlc_tree::RlcSection;
/// use rlc_units::{Capacitance, Resistance};
///
/// let section = RlcSection::rc(
///     Resistance::from_ohms(200.0),
///     Capacitance::from_picofarads(0.4),
/// );
/// let (line, _) = topology::single_line(12, section);
/// let driver = Resistance::from_ohms(300.0);
/// let lib = Repeater::typical_cmos_250nm();
/// let placement = van_ginneken(&line, driver, &lib, 20.0);
///
/// let mut timer = PlacementTimer::new(&line, &placement.buffers, driver, lib);
/// assert_eq!(
///     timer.delay_with_size(20.0),
///     evaluate(&line, &placement.buffers, driver, &lib, 20.0),
/// );
/// ```
#[derive(Debug)]
pub struct PlacementTimer {
    stages: Vec<StagePlan>,
    tree: RlcTree,
    buffers: Vec<NodeId>,
    driver_resistance: Resistance,
    lib: Repeater,
}

impl PlacementTimer {
    /// Builds the stage decomposition for `buffers` on `tree` (same
    /// convention as [`evaluate`]: a buffer sits at the top of its
    /// section).
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or any buffer id is out of range.
    pub fn new(
        tree: &RlcTree,
        buffers: &[NodeId],
        driver_resistance: Resistance,
        lib: Repeater,
    ) -> Self {
        assert!(!tree.is_empty(), "cannot evaluate an empty tree");
        let is_buf = buffer_flags(tree, buffers);

        struct Job {
            roots: Vec<NodeId>,
            driver_is_roots_buffer: bool,
            parent: Option<(usize, NodeId)>,
        }
        let mut stages: Vec<StagePlan> = Vec::new();
        let mut queue = vec![Job {
            roots: tree.roots().to_vec(),
            driver_is_roots_buffer: false,
            parent: None,
        }];
        while let Some(job) = queue.pop() {
            let idx = stages.len();
            // The expansion below must mirror `evaluate` exactly (same stack
            // discipline, same arena order) so the stage sums — and therefore
            // the delays — stay bit-identical to the from-scratch path.
            let mut stage = RlcTree::new();
            let expand_root = |r: &NodeId| job.driver_is_roots_buffer || !is_buf[r.index()];
            let buffered_at_driver: Vec<NodeId> = job
                .roots
                .iter()
                .copied()
                .filter(|r| !expand_root(r))
                .collect();
            // Placeholder section; every `delay_with_size` call overwrites it.
            let driver_node = stage.add_root_section(RlcSection::zero());

            let mut loaded = Vec::new();
            let mut sinks = Vec::new();
            let mut stack: Vec<(NodeId, NodeId)> = job
                .roots
                .iter()
                .filter(|r| expand_root(r))
                .map(|&r| (r, driver_node))
                .collect();
            while let Some((orig, parent)) = stack.pop() {
                let buffered_children = tree
                    .children(orig)
                    .iter()
                    .filter(|c| is_buf[c.index()])
                    .count();
                let new_id = stage.add_section(parent, *tree.section(orig));
                if buffered_children > 0 {
                    loaded.push((new_id, *tree.section(orig), buffered_children));
                }
                if tree.is_leaf(orig) {
                    sinks.push(new_id);
                }
                for &child in tree.children(orig) {
                    if is_buf[child.index()] {
                        queue.push(Job {
                            roots: vec![child],
                            driver_is_roots_buffer: true,
                            parent: Some((idx, new_id)),
                        });
                    } else {
                        stack.push((child, new_id));
                    }
                }
            }
            for &b in &buffered_at_driver {
                queue.push(Job {
                    roots: vec![b],
                    driver_is_roots_buffer: true,
                    parent: Some((idx, driver_node)),
                });
            }
            stages.push(StagePlan {
                analysis: IncrementalAnalysis::new(stage),
                driver_node,
                driver_is_buffer: job.parent.is_some(),
                buffered_at_driver: buffered_at_driver.len(),
                loaded,
                sinks,
                parent: job.parent,
            });
        }
        Self {
            stages,
            tree: tree.clone(),
            buffers: buffers.to_vec(),
            driver_resistance,
            lib,
        }
    }

    /// The worst source→sink 50% delay with all buffers at `size`, via
    /// incremental edits of the pre-built stages. Bit-identical to
    /// `evaluate(tree, buffers, driver_resistance, lib, size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    pub fn delay_with_size(&mut self, size: f64) -> Time {
        assert!(size > 0.0, "buffer size must be positive");
        let r_buf = self.lib.resistance / size;
        let c_in = self.lib.input_capacitance * size;
        let c_out = self.lib.output_capacitance * size;

        for stage in &mut self.stages {
            let (driver_r, driver_c) = if stage.driver_is_buffer {
                (r_buf, c_out)
            } else {
                (self.driver_resistance, Capacitance::ZERO)
            };
            let driver_section =
                RlcSection::rc(driver_r, driver_c + c_in * stage.buffered_at_driver as f64);
            stage
                .analysis
                .set_section(stage.driver_node, driver_section);
            for &(node, base, count) in &stage.loaded {
                stage
                    .analysis
                    .set_section(node, base.with_added_capacitance(c_in * count as f64));
            }
            stage.analysis.commit();
        }

        let mut arrivals = vec![Time::ZERO; self.stages.len()];
        let mut worst = Time::ZERO;
        for idx in 0..self.stages.len() {
            let arrival = match self.stages[idx].parent {
                None => Time::ZERO,
                Some((p, attach)) => arrivals[p] + self.stages[p].analysis.delay_50(attach),
            };
            arrivals[idx] = arrival;
            for &sink in &self.stages[idx].sinks {
                worst = worst.max(arrival + self.stages[idx].analysis.delay_50(sink));
            }
        }
        debug_assert_eq!(
            worst,
            evaluate(
                &self.tree,
                &self.buffers,
                self.driver_resistance,
                &self.lib,
                size
            ),
            "incremental placement re-timing diverged from the from-scratch path at size = {size}"
        );
        worst
    }
}

/// A buffer-size optimization result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedBuffering {
    /// Optimal buffer size (multiple of the library's unit buffer).
    pub size: f64,
    /// Worst source→sink RLC 50% delay at the optimum.
    pub delay: Time,
}

/// Finds the buffer size in `[min_size, max_size]` minimizing the worst
/// RLC 50% delay of a fixed placement, by golden-section search over a
/// [`PlacementTimer`].
///
/// Larger buffers drive harder (R/size) but load their upstream stage
/// more (C·size), so the placement's delay has an interior optimum in the
/// common size — the RLC analogue of the classic repeater-sizing
/// trade-off, evaluated on the paper's closed form.
///
/// # Panics
///
/// Panics if the tree is empty, any buffer id is out of range, or the
/// bounds are not positive with `min_size < max_size`.
pub fn optimal_buffer_size(
    tree: &RlcTree,
    buffers: &[NodeId],
    driver_resistance: Resistance,
    lib: &Repeater,
    min_size: f64,
    max_size: f64,
) -> SizedBuffering {
    assert!(
        min_size > 0.0 && max_size > min_size,
        "size bounds must satisfy 0 < min < max, got [{min_size}, {max_size}]"
    );
    let mut timer = PlacementTimer::new(tree, buffers, driver_resistance, *lib);
    let f = |s: f64| timer.delay_with_size(s).as_seconds();
    let (size, delay) = golden_min(min_size, max_size, f);
    SizedBuffering {
        size,
        delay: Time::from_seconds(delay),
    }
}

fn buffer_flags(tree: &RlcTree, buffers: &[NodeId]) -> Vec<bool> {
    let mut flags = vec![false; tree.len()];
    for &b in buffers {
        assert!(b.index() < tree.len(), "buffer node {b} is not in the tree");
        flags[b.index()] = true;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_tree::{topology, RlcSection};
    use rlc_units::Inductance;

    fn rc_section(r: f64, c_pf: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::ZERO,
            Capacitance::from_picofarads(c_pf),
        )
    }

    fn lib() -> Repeater {
        Repeater::typical_cmos_250nm()
    }

    #[test]
    fn short_wire_needs_no_buffer() {
        let (line, _) = topology::single_line(2, rc_section(10.0, 0.05));
        let sol = van_ginneken(&line, Resistance::from_ohms(100.0), &lib(), 10.0);
        assert!(sol.buffers.is_empty(), "got {:?}", sol.buffers);
    }

    #[test]
    fn long_resistive_line_gets_buffered() {
        let (line, _) = topology::single_line(20, rc_section(200.0, 0.4));
        let driver = Resistance::from_ohms(300.0);
        let sol = van_ginneken(&line, driver, &lib(), 20.0);
        assert!(
            !sol.buffers.is_empty(),
            "a 4 kΩ / 8 pF line must want buffers"
        );
        let unbuffered = elmore_delay_of(&line, &[], driver, &lib(), 20.0);
        assert!(sol.elmore_delay < unbuffered);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_line() {
        let (line, _) = topology::single_line(5, rc_section(400.0, 0.3));
        let driver = Resistance::from_ohms(500.0);
        let size = 15.0;
        let sol = van_ginneken(&line, driver, &lib(), size);

        let nodes: Vec<NodeId> = line.node_ids().collect();
        let mut best = Time::from_seconds(f64::INFINITY);
        for mask in 0u32..(1 << nodes.len()) {
            let set: Vec<NodeId> = nodes
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, &n)| n)
                .collect();
            let d = elmore_delay_of(&line, &set, driver, &lib(), size);
            best = best.min(d);
        }
        assert!(
            (sol.elmore_delay.as_seconds() - best.as_seconds()).abs() <= 1e-9 * best.as_seconds(),
            "DP {} vs exhaustive {}",
            sol.elmore_delay,
            best
        );
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_tree() {
        let (tree, _) = topology::fig5(rc_section(500.0, 0.3));
        let driver = Resistance::from_ohms(400.0);
        let size = 12.0;
        let sol = van_ginneken(&tree, driver, &lib(), size);
        let nodes: Vec<NodeId> = tree.node_ids().collect();
        let mut best = Time::from_seconds(f64::INFINITY);
        for mask in 0u32..(1 << nodes.len()) {
            let set: Vec<NodeId> = nodes
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, &n)| n)
                .collect();
            best = best.min(elmore_delay_of(&tree, &set, driver, &lib(), size));
        }
        assert!(
            (sol.elmore_delay.as_seconds() - best.as_seconds()).abs() <= 1e-9 * best.as_seconds(),
            "DP {} vs exhaustive {}",
            sol.elmore_delay,
            best
        );
    }

    #[test]
    fn dp_delay_matches_independent_recomputation() {
        let tree = topology::balanced_tree(3, 2, rc_section(300.0, 0.25));
        let driver = Resistance::from_ohms(400.0);
        let sol = van_ginneken(&tree, driver, &lib(), 12.0);
        let recomputed = elmore_delay_of(&tree, &sol.buffers, driver, &lib(), 12.0);
        assert!(
            (sol.elmore_delay.as_seconds() - recomputed.as_seconds()).abs()
                <= 1e-9 * recomputed.as_seconds(),
            "DP {} vs recomputed {}",
            sol.elmore_delay,
            recomputed
        );
    }

    #[test]
    fn rlc_evaluation_confirms_improvement() {
        let sec = RlcSection::new(
            Resistance::from_ohms(250.0),
            Inductance::from_nanohenries(0.5),
            Capacitance::from_picofarads(0.35),
        );
        let (line, _) = topology::single_line(12, sec);
        let driver = Resistance::from_ohms(300.0);
        let sol = van_ginneken(&line, driver, &lib(), 15.0);
        assert!(!sol.buffers.is_empty());
        let buffered = evaluate(&line, &sol.buffers, driver, &lib(), 15.0);
        let unbuffered = evaluate(&line, &[], driver, &lib(), 15.0);
        assert!(
            buffered < unbuffered,
            "buffered {buffered} vs unbuffered {unbuffered}"
        );
    }

    #[test]
    fn evaluate_unbuffered_matches_direct_analysis() {
        let (line, _) = topology::single_line(4, rc_section(100.0, 0.2));
        let driver = Resistance::from_ohms(200.0);
        let d = evaluate(&line, &[], driver, &lib(), 10.0);
        // Manual: driver section + the line, one stage.
        let mut manual = RlcTree::new();
        let drv = manual.add_root_section(RlcSection::rc(driver, Capacitance::ZERO));
        manual.graft(Some(drv), &line);
        let timing = TreeAnalysis::new(&manual);
        let sink = manual.leaves().next().expect("sink");
        let expect = timing.delay_50(sink);
        assert!(
            (d.as_seconds() - expect.as_seconds()).abs() < 1e-12 * expect.as_seconds(),
            "{d} vs {expect}"
        );
    }

    #[test]
    fn evaluate_matches_elmore_in_rc_wyatt_limit() {
        // For an RC net, the stagewise EED evaluation is the Wyatt delay
        // per stage; with no buffers it must be ln2 × the Elmore constant.
        let (line, _) = topology::single_line(6, rc_section(150.0, 0.25));
        let driver = Resistance::from_ohms(250.0);
        let eed = evaluate(&line, &[], driver, &lib(), 10.0);
        let elmore = elmore_delay_of(&line, &[], driver, &lib(), 10.0);
        let ratio = eed.as_seconds() / elmore.as_seconds();
        assert!(
            (ratio - core::f64::consts::LN_2).abs() < 1e-9,
            "ratio {ratio}"
        );
    }

    #[test]
    fn buffer_isolates_branch_load() {
        // Classic van Ginneken motivation: a buffer shields the critical
        // path from a big side load. Critical sink: fast branch; side
        // branch: huge capacitance.
        let mut tree = RlcTree::new();
        let trunk = tree.add_root_section(rc_section(100.0, 0.1));
        let _critical = tree.add_section(trunk, rc_section(100.0, 0.1));
        let side = tree.add_section(trunk, rc_section(50.0, 40.0)); // 40 pF monster
        let driver = Resistance::from_ohms(500.0);
        let sol = van_ginneken(&tree, driver, &lib(), 20.0);
        assert!(
            sol.buffers.contains(&side),
            "the side load should be buffered, got {:?}",
            sol.buffers
        );
    }

    #[test]
    fn placement_timer_matches_evaluate_across_sizes() {
        // Branching RLC net so the decomposition has buffered children,
        // driver-attached buffers and multi-sink stages.
        let sec = RlcSection::new(
            Resistance::from_ohms(300.0),
            Inductance::from_nanohenries(0.4),
            Capacitance::from_picofarads(0.3),
        );
        let (tree, _) = topology::fig5(sec);
        let driver = Resistance::from_ohms(400.0);
        let sol = van_ginneken(&tree, driver, &lib(), 15.0);
        assert!(!sol.buffers.is_empty(), "placement should use buffers");
        let mut timer = PlacementTimer::new(&tree, &sol.buffers, driver, lib());
        for size in [2.0, 7.5, 15.0, 40.0, 15.0] {
            assert_eq!(
                timer.delay_with_size(size),
                evaluate(&tree, &sol.buffers, driver, &lib(), size),
                "size {size}"
            );
        }
    }

    #[test]
    fn placement_timer_handles_unbuffered_nets() {
        let (line, _) = topology::single_line(5, rc_section(120.0, 0.2));
        let driver = Resistance::from_ohms(250.0);
        let mut timer = PlacementTimer::new(&line, &[], driver, lib());
        assert_eq!(
            timer.delay_with_size(10.0),
            evaluate(&line, &[], driver, &lib(), 10.0)
        );
    }

    #[test]
    fn optimal_buffer_size_beats_the_extremes() {
        let (line, _) = topology::single_line(16, rc_section(250.0, 0.4));
        let driver = Resistance::from_ohms(300.0);
        let sol = van_ginneken(&line, driver, &lib(), 20.0);
        assert!(!sol.buffers.is_empty());
        let best = optimal_buffer_size(&line, &sol.buffers, driver, &lib(), 1.0, 200.0);
        assert!(
            best.size > 1.5 && best.size < 190.0,
            "interior optimum, got {}",
            best.size
        );
        let tiny = evaluate(&line, &sol.buffers, driver, &lib(), 1.0);
        let huge = evaluate(&line, &sol.buffers, driver, &lib(), 200.0);
        assert!(best.delay < tiny && best.delay < huge);
    }

    #[test]
    #[should_panic(expected = "size bounds")]
    fn optimal_buffer_size_rejects_inverted_bounds() {
        let (line, sink) = topology::single_line(3, rc_section(100.0, 0.2));
        let _ = optimal_buffer_size(
            &line,
            &[sink],
            Resistance::from_ohms(100.0),
            &lib(),
            8.0,
            2.0,
        );
    }

    #[test]
    #[should_panic(expected = "cannot buffer an empty tree")]
    fn rejects_empty_tree() {
        let _ = van_ginneken(&RlcTree::new(), Resistance::from_ohms(100.0), &lib(), 1.0);
    }

    #[test]
    #[should_panic(expected = "buffer node")]
    fn evaluate_rejects_foreign_buffer() {
        let (big, _) = topology::single_line(9, rc_section(10.0, 0.1));
        let foreign = big.node_ids().last().expect("nodes");
        let (line, _) = topology::single_line(2, rc_section(10.0, 0.1));
        let _ = evaluate(&line, &[foreign], Resistance::from_ohms(10.0), &lib(), 1.0);
    }
}
