//! Continuous wire sizing on the closed-form delay.
//!
//! Widening a wire trades resistance (down) against capacitance (up), so
//! the sink delay has an interior optimum in the width. Because the
//! paper's delay expression is continuous in the electrical parameters, a
//! derivative-free 1-D search on it converges without any simulation in
//! the loop — the property Section I advertises for synthesis.
//!
//! The search evaluates candidates through
//! [`rlc_engine::IncrementalAnalysis`]: the section chain is built once
//! and each width probe re-parameterizes it in place (no allocation, no
//! tree rebuild). Debug builds cross-check every probe against the
//! from-scratch [`sized_delay`] path; the two are bit-identical.

use eed::TreeAnalysis;
use rlc_engine::IncrementalAnalysis;
use rlc_tree::wire::WireModel;
use rlc_tree::RlcTree;
use rlc_units::{Capacitance, Time};

use crate::search::golden_min;

/// Result of a wire-sizing optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedWire {
    /// Optimal width, as a multiple of the input wire's width.
    pub width: f64,
    /// Predicted 50% delay at the optimum.
    pub delay: Time,
}

/// The model 50% delay of `length_um` of `wire` widened by `width`,
/// driving `load`, discretized into `segments` sections.
///
/// # Panics
///
/// Panics if `width`, `length_um` or `segments` is not positive.
pub fn sized_delay(
    wire: &WireModel,
    width: f64,
    length_um: f64,
    load: Capacitance,
    segments: usize,
) -> Time {
    let sized = wire.widened(width);
    let mut tree = RlcTree::new();
    let sink = sized.route(&mut tree, None, length_um, segments);
    let sec = tree.section_mut(sink);
    *sec = sec.with_added_capacitance(load);
    TreeAnalysis::new(&tree).delay_50(sink)
}

/// Finds the width in `[min_width, max_width]` minimizing the sink delay,
/// by golden-section search on the closed-form delay.
///
/// # Panics
///
/// Panics if the bounds are not positive with `min_width < max_width`.
pub fn optimal_width(
    wire: &WireModel,
    length_um: f64,
    load: Capacitance,
    min_width: f64,
    max_width: f64,
) -> SizedWire {
    assert!(
        min_width > 0.0 && max_width > min_width,
        "width bounds must satisfy 0 < min < max, got [{min_width}, {max_width}]"
    );
    let segments = 8;
    // Build the chain once (at the lower width bound — any width works,
    // every probe overwrites all sections) and re-parameterize it in place
    // for each candidate, instead of rebuilding a tree per evaluation.
    let seg_len = length_um / segments as f64;
    let mut tree = RlcTree::new();
    let sink = wire
        .widened(min_width)
        .route(&mut tree, None, length_um, segments);
    let chain = tree.path_from_root(sink);
    let mut probe = IncrementalAnalysis::new(tree);
    let mut f = |w: f64| {
        let per = wire.widened(w).section(seg_len);
        for &node in &chain {
            let section = if node == sink {
                per.with_added_capacitance(load)
            } else {
                per
            };
            probe.set_section(node, section);
        }
        probe.commit();
        let delay = probe.delay_50(sink);
        debug_assert_eq!(
            delay,
            sized_delay(wire, w, length_um, load, segments),
            "incremental width probe diverged from the from-scratch path at w = {w}"
        );
        delay.as_seconds()
    };
    let (width, delay) = golden_min(min_width, max_width, &mut f);
    SizedWire {
        width,
        delay: Time::from_seconds(delay),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOAD: f64 = 120.0; // fF

    #[test]
    fn delay_has_an_interior_optimum() {
        let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
        let load = Capacitance::from_femtofarads(LOAD);
        let best = optimal_width(&wire, 3000.0, load, 1.0, 64.0);
        assert!(
            best.width > 1.5 && best.width < 60.0,
            "width {}",
            best.width
        );
        // The optimum beats both extremes.
        let narrow = sized_delay(&wire, 1.0, 3000.0, load, 8);
        let wide = sized_delay(&wire, 64.0, 3000.0, load, 8);
        assert!(best.delay < narrow);
        assert!(best.delay < wide);
    }

    #[test]
    fn optimum_is_locally_flat() {
        let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
        let load = Capacitance::from_femtofarads(LOAD);
        let best = optimal_width(&wire, 3000.0, load, 1.0, 64.0);
        for factor in [0.9, 1.1] {
            let nearby = sized_delay(&wire, best.width * factor, 3000.0, load, 8);
            assert!(
                nearby >= best.delay * 0.9999,
                "width {} should not beat the optimum",
                best.width * factor
            );
        }
    }

    #[test]
    fn longer_wires_want_wider_metal() {
        let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
        let load = Capacitance::from_femtofarads(LOAD);
        let short = optimal_width(&wire, 1000.0, load, 1.0, 64.0);
        let long = optimal_width(&wire, 6000.0, load, 1.0, 64.0);
        assert!(
            long.width > short.width,
            "long {} vs short {}",
            long.width,
            short.width
        );
    }

    #[test]
    #[should_panic(expected = "width bounds")]
    fn rejects_inverted_bounds() {
        let _ = optimal_width(
            &WireModel::MINIMUM_WIDTH_SIGNAL,
            1000.0,
            Capacitance::ZERO,
            4.0,
            2.0,
        );
    }
}
