//! Clock-skew analysis over the sinks of a distribution tree.
//!
//! The paper notes that skew derived from Elmore-class models correlates
//! strongly with SPICE-derived skew \[26\]; this module provides the same
//! report on the RLC model.

use eed::TreeAnalysis;
use rlc_tree::{NodeId, RlcTree};
use rlc_units::Time;

/// Arrival-time summary over a set of clock pins.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Per-pin `(pin, arrival)` in the order supplied.
    pub arrivals: Vec<(NodeId, Time)>,
    /// The latest pin and its arrival.
    pub latest: (NodeId, Time),
    /// The earliest pin and its arrival.
    pub earliest: (NodeId, Time),
}

impl SkewReport {
    /// The skew: latest minus earliest arrival.
    pub fn skew(&self) -> Time {
        self.latest.1 - self.earliest.1
    }
}

/// Computes arrival times (50% delays) at all leaves of `tree`.
///
/// The pin order in the resulting [`SkewReport::arrivals`] is the tree's
/// **sorted sink-enumeration invariant** — ascending [`NodeId`], see
/// [`RlcTree::leaves`] — not an accident of traversal, so reports are
/// byte-stable across kernel and layout changes.
///
/// Returns `None` for empty trees or trees whose sinks have no dynamics.
pub fn clock_skew(tree: &RlcTree) -> Option<SkewReport> {
    let pins: Vec<NodeId> = tree.leaves().collect();
    debug_assert!(pins.windows(2).all(|w| w[0] < w[1]));
    clock_skew_at(tree, &pins)
}

/// Computes arrival times at an explicit pin set.
///
/// Returns `None` if `pins` is empty or none of them has dynamics.
///
/// # Panics
///
/// Panics if any pin is not a node of `tree`.
pub fn clock_skew_at(tree: &RlcTree, pins: &[NodeId]) -> Option<SkewReport> {
    let timing = TreeAnalysis::new(tree);
    let arrivals: Vec<(NodeId, Time)> = pins
        .iter()
        .filter_map(|&pin| Some((pin, timing.try_model(pin)?.delay_50())))
        .collect();
    let latest = arrivals
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite delays"))?;
    let earliest = arrivals
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite delays"))?;
    Some(SkewReport {
        arrivals,
        latest,
        earliest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_tree::{topology, RlcSection};
    use rlc_units::{Capacitance, Inductance, Resistance};

    fn sec(r: f64, l: f64, c: f64) -> RlcSection {
        RlcSection::new(
            Resistance::from_ohms(r),
            Inductance::from_nanohenries(l),
            Capacitance::from_picofarads(c),
        )
    }

    #[test]
    fn arrival_order_is_the_sorted_sink_invariant() {
        // The report's pin order is contractually ascending NodeId — the
        // same sorted sink-enumeration invariant the flat kernels and the
        // engine reports rely on — even for trees built in scrambled
        // grafting order.
        let mut tree = topology::balanced_tree(3, 2, sec(20.0, 2.0, 0.3));
        let (extra, _) = topology::single_line(3, sec(10.0, 1.0, 0.1));
        let roots: Vec<_> = tree.node_ids().collect();
        tree.graft(Some(roots[1]), &extra);
        let report = clock_skew(&tree).expect("has pins");
        let pins: Vec<NodeId> = report.arrivals.iter().map(|&(pin, _)| pin).collect();
        let sorted_leaves: Vec<NodeId> = tree.leaves().collect();
        assert!(pins.windows(2).all(|w| w[0] < w[1]), "pins not ascending");
        assert_eq!(pins, sorted_leaves);
    }

    #[test]
    fn balanced_tree_has_zero_skew() {
        let tree = topology::balanced_tree(4, 2, sec(20.0, 2.0, 0.3));
        let report = clock_skew(&tree).expect("has pins");
        assert_eq!(report.arrivals.len(), 8);
        assert!(report.skew().as_seconds() < 1e-20);
    }

    #[test]
    fn asymmetry_creates_skew_toward_heavy_branch() {
        let (tree, nodes) = topology::fig5_asymmetric(4.0, sec(20.0, 2.0, 0.3));
        let report = clock_skew(&tree).expect("has pins");
        assert!(report.skew().as_seconds() > 0.0);
        // The latest pin sits under the high-impedance left branch.
        assert!(
            report.latest.0 == nodes.n4 || report.latest.0 == nodes.n5,
            "latest = {}",
            report.latest.0
        );
    }

    #[test]
    fn explicit_pin_subset() {
        let (tree, nodes) = topology::fig5(sec(20.0, 2.0, 0.3));
        let report = clock_skew_at(&tree, &[nodes.n4, nodes.n7]).expect("pins");
        assert_eq!(report.arrivals.len(), 2);
        assert!(report.skew().as_seconds() < 1e-20, "balanced pair");
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(clock_skew(&RlcTree::new()).is_none());
        let (tree, _) = topology::fig5(sec(20.0, 2.0, 0.3));
        assert!(clock_skew_at(&tree, &[]).is_none());
    }
}
