//! Figures of merit for the importance of on-chip inductance.
//!
//! From the authors' companion paper (Ismail, Friedman & Neves, *Figures of
//! merit to characterize the importance of on-chip inductance*, DAC 1998,
//! reference \[8\] of the reproduced paper): for a wire with per-unit-length
//! parameters `r`, `l`, `c` driven by a signal with rise time `t_r`,
//! inductive (transmission-line) behaviour matters only for lengths inside
//!
//! ```text
//! t_r / (2·√(l·c))   <   length   <   2/r · √(l/c)
//! ```
//!
//! * below the lower limit the wire is shorter than the signal's spatial
//!   extent — it behaves as a lumped capacitance;
//! * above the upper limit the accumulated resistance overdamps any
//!   inductive behaviour (attenuation dominates).
//!
//! The window can be empty: sufficiently resistive wires never exhibit
//! inductive effects at any length.

use rlc_tree::wire::WireModel;
use rlc_units::Time;

/// The range of wire lengths (in µm) for which inductance significantly
/// affects the waveform, or `None` if the window is empty.
///
/// # Panics
///
/// Panics if `rise_time` is not positive and finite, or the wire has zero
/// inductance or capacitance per unit length.
///
/// # Examples
///
/// ```
/// use rlc_tree::wire::WireModel;
/// use rlc_units::Time;
/// use rlc_opt::fom::inductance_window;
///
/// // A fast edge on a low-resistance clock spine has a wide window…
/// let w = inductance_window(&WireModel::CLOCK_SPINE, Time::from_picoseconds(30.0));
/// assert!(w.is_some());
/// // …while a slow edge on a resistive minimum-width wire has none.
/// let none = inductance_window(
///     &WireModel::MINIMUM_WIDTH_SIGNAL,
///     Time::from_nanoseconds(1.0),
/// );
/// assert!(none.is_none());
/// ```
pub fn inductance_window(wire: &WireModel, rise_time: Time) -> Option<(f64, f64)> {
    assert!(
        rise_time.is_finite() && rise_time.as_seconds() > 0.0,
        "rise time must be positive and finite, got {rise_time}"
    );
    let r = wire.resistance_per_um().as_ohms();
    let l = wire.inductance_per_um().as_henries();
    let c = wire.capacitance_per_um().as_farads();
    assert!(
        l > 0.0 && c > 0.0,
        "wire must have positive inductance and capacitance per unit length"
    );
    // Both limits in µm (per-unit-length values are per µm).
    let lower = rise_time.as_seconds() / (2.0 * (l * c).sqrt());
    let upper = if r > 0.0 {
        2.0 / r * (l / c).sqrt()
    } else {
        f64::INFINITY
    };
    (lower < upper).then_some((lower, upper))
}

/// Returns `true` if a wire of `length_um` with the given input rise time
/// falls inside the inductance-significance window.
///
/// # Panics
///
/// Same conditions as [`inductance_window`]; additionally `length_um` must
/// be positive.
pub fn is_inductance_significant(wire: &WireModel, length_um: f64, rise_time: Time) -> bool {
    assert!(
        length_um.is_finite() && length_um > 0.0,
        "length must be positive and finite, got {length_um}"
    );
    match inductance_window(wire, rise_time) {
        Some((lo, hi)) => length_um > lo && length_um < hi,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_spine_has_wide_window_for_fast_edges() {
        let (lo, hi) = inductance_window(&WireModel::CLOCK_SPINE, Time::from_picoseconds(30.0))
            .expect("window exists");
        assert!(lo < hi);
        // Millimetre-scale clock routes land inside the window.
        assert!(is_inductance_significant(
            &WireModel::CLOCK_SPINE,
            3000.0,
            Time::from_picoseconds(30.0)
        ));
        assert!(lo > 0.0);
    }

    #[test]
    fn resistive_wire_never_inductive() {
        // r = 0.15 Ω/µm: upper limit 2/r·√(l/c) ≈ 0.49 mm, below the lower
        // limit for any realistically slow edge.
        let w = inductance_window(
            &WireModel::MINIMUM_WIDTH_SIGNAL,
            Time::from_nanoseconds(1.0),
        );
        assert!(w.is_none());
    }

    #[test]
    fn faster_edges_widen_the_window_downward() {
        let wire = WireModel::IBM_COPPER_GLOBAL;
        let (lo_fast, hi_fast) =
            inductance_window(&wire, Time::from_picoseconds(20.0)).expect("window");
        let (lo_slow, hi_slow) =
            inductance_window(&wire, Time::from_picoseconds(50.0)).expect("window");
        assert!(lo_fast < lo_slow, "faster edge lowers the minimum length");
        assert!(
            (hi_fast - hi_slow).abs() < 1e-9,
            "upper limit is rise-time independent"
        );
        // Slow enough edges close the window entirely.
        assert!(inductance_window(&wire, Time::from_picoseconds(200.0)).is_none());
    }

    #[test]
    fn short_and_long_wires_fall_outside() {
        let wire = WireModel::CLOCK_SPINE;
        let t_r = Time::from_picoseconds(30.0);
        let (lo, hi) = inductance_window(&wire, t_r).expect("window");
        assert!(!is_inductance_significant(&wire, lo * 0.5, t_r));
        assert!(!is_inductance_significant(&wire, hi * 2.0, t_r));
        assert!(is_inductance_significant(&wire, (lo * hi).sqrt(), t_r));
    }

    #[test]
    fn window_agrees_with_damping_factor_trend() {
        // Inside the window the lumped model of the wire is underdamped;
        // far above it, overdamped. Ties the FOM back to ζ.
        use eed::TreeAnalysis;
        let wire = WireModel::CLOCK_SPINE;
        let t_r = Time::from_picoseconds(30.0);
        let (lo, hi) = inductance_window(&wire, t_r).expect("window");
        let zeta_at = |len: f64| {
            let mut tree = rlc_tree::RlcTree::new();
            let sink = wire.route(&mut tree, None, len, 8);
            TreeAnalysis::new(&tree).model(sink).zeta()
        };
        assert!(
            zeta_at((lo * hi).sqrt()) < 1.0,
            "inside the window: ringing"
        );
        assert!(zeta_at(hi * 4.0) > 1.0, "far beyond: overdamped");
    }

    #[test]
    #[should_panic(expected = "rise time must be positive")]
    fn rejects_bad_rise_time() {
        let _ = inductance_window(&WireModel::CLOCK_SPINE, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive inductance")]
    fn rejects_rc_wire() {
        let rc = WireModel::new(
            rlc_units::Resistance::from_ohms(0.1),
            rlc_units::Inductance::ZERO,
            rlc_units::Capacitance::from_femtofarads(0.2),
        );
        let _ = inductance_window(&rc, Time::from_picoseconds(50.0));
    }
}
