//! Property-based tests over random RLC trees: the structural invariants
//! the paper's model guarantees by construction.

use equivalent_elmore::prelude::*;
use proptest::prelude::*;

/// Strategy: a random RLC tree described by (seed, size, ranges).
fn arb_tree() -> impl Strategy<Value = RlcTree> {
    (
        any::<u64>(),
        2usize..40,
        1.0f64..100.0, // R upper bound, Ω
        0.01f64..10.0, // L upper bound, nH
        0.01f64..1.0,  // C upper bound, pF
    )
        .prop_map(|(seed, n, r_hi, l_hi, c_hi)| {
            topology::random_tree(
                seed,
                n,
                (
                    Resistance::from_ohms(r_hi * 0.01),
                    Resistance::from_ohms(r_hi),
                ),
                (
                    Inductance::from_nanohenries(l_hi * 0.01),
                    Inductance::from_nanohenries(l_hi),
                ),
                (
                    Capacitance::from_picofarads(c_hi * 0.01),
                    Capacitance::from_picofarads(c_hi),
                ),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Paper claim: the model is *always stable* — ζ and ω_n are positive
    /// for every node of every physical tree.
    #[test]
    fn model_is_always_stable(tree in arb_tree()) {
        let timing = TreeAnalysis::new(&tree);
        for node in tree.node_ids() {
            let m = timing.model(node);
            prop_assert!(m.zeta() > 0.0);
            prop_assert!(m.omega_n().as_radians_per_second() > 0.0);
            if let Some(poles) = m.poles() {
                for (re, _) in poles {
                    prop_assert!(re < 0.0, "pole in right half-plane at {node}");
                }
            }
        }
    }

    /// Delays are positive and finite; rise time dominates the 50% delay
    /// except for strongly underdamped nodes (as ζ → 0, the 10–90% window
    /// t₉₀−t₁₀ → arccos(0.1)−arccos(0.9) ≈ 1.02, *below* t₅₀ = π/3).
    #[test]
    fn delays_are_sane(tree in arb_tree()) {
        let timing = TreeAnalysis::new(&tree);
        for node in tree.node_ids() {
            let d = timing.delay_50(node);
            let r = timing.rise_time(node);
            prop_assert!(d.is_finite() && d.as_seconds() > 0.0);
            prop_assert!(r.is_finite() && r.as_seconds() > 0.0);
            if timing.model(node).zeta() > 0.5 {
                prop_assert!(r > d);
            }
            // Exact and fitted delays agree within the fit envelope.
            let exact = timing.delay_50_exact(node);
            let err = ((d - exact).as_seconds() / exact.as_seconds()).abs();
            prop_assert!(err < 0.05, "fit error {err} at {node}");
        }
    }

    /// The Elmore sum T_RC is monotone along every root→leaf path, and so
    /// is the fitted delay for nodes in the same damping regime... the
    /// robust invariant is monotonicity of the *sums*.
    #[test]
    fn tree_sums_monotone_along_paths(tree in arb_tree()) {
        let sums = tree_sums(&tree);
        for leaf in tree.leaves().collect::<Vec<_>>() {
            let path = tree.path_from_root(leaf);
            for pair in path.windows(2) {
                prop_assert!(sums.rc(pair[1]) >= sums.rc(pair[0]));
                prop_assert!(sums.lc(pair[1]) >= sums.lc(pair[0]));
            }
        }
    }

    /// First exact moment equals −T_RC on every node (cross-crate
    /// consistency of the two independent moment computations).
    #[test]
    fn exact_moments_agree_with_tree_sums(tree in arb_tree()) {
        let sums = tree_sums(&tree);
        let moments = equivalent_elmore::moments::transfer_moments(&tree, 1);
        for node in tree.node_ids() {
            let m1 = moments.at(node)[1];
            let t_rc = sums.rc(node).as_seconds();
            prop_assert!((m1 + t_rc).abs() <= 1e-12 + 1e-9 * t_rc);
        }
    }

    /// The simulator settles every node to the supply voltage. The horizon
    /// comes from the *model's* settling estimate (a strongly underdamped
    /// tree rings for ~1/ζ delay-lengths), closing the loop between the two
    /// crates.
    #[test]
    fn simulation_settles_to_supply(tree in arb_tree()) {
        let timing = TreeAnalysis::new(&tree);
        let (sink, _) = timing.critical_sink().expect("has sinks");
        let t_stop = timing.model(sink).settling_time(0.02) * 3.0;
        let options = SimOptions::new(
            Time::from_seconds(t_stop.as_seconds() / 20_000.0),
            t_stop,
        );
        let wave = &simulate(&tree, &Source::step(1.0), &options, &[sink])[0];
        prop_assert!((wave.last_value() - 1.0).abs() < 0.1,
            "sink settled to {}", wave.last_value());
    }

    /// Scaling every inductance down makes every node *more* damped.
    #[test]
    fn less_inductance_means_more_damping(tree in arb_tree()) {
        let timing = TreeAnalysis::new(&tree);
        let damped = tree.map_sections(|_, s| s.with_inductance(s.inductance() * 0.25));
        let damped_timing = TreeAnalysis::new(&damped);
        for node in tree.node_ids() {
            let z0 = timing.model(node).zeta();
            let z1 = damped_timing.model(node).zeta();
            prop_assert!(z1 >= z0 * 0.999, "ζ {z0} -> {z1} at {node}");
        }
    }

    /// Netlist write→parse round-trips the model at every original sink.
    #[test]
    fn netlist_roundtrip_is_lossless(tree in arb_tree()) {
        use equivalent_elmore::tree::netlist;
        let deck = netlist::write(&tree);
        let parsed = netlist::Netlist::parse(&deck).expect("own output parses");
        let a = TreeAnalysis::new(&tree);
        let b = TreeAnalysis::new(parsed.tree());
        for leaf in tree.leaves().collect::<Vec<_>>() {
            let name = format!("n{}", leaf.index());
            let rt = parsed.node(&name).expect("leaf is named");
            let za = a.model(leaf).zeta();
            let zb = b.model(rt).zeta();
            prop_assert!((za - zb).abs() <= 1e-9 * za.max(1.0), "{za} vs {zb}");
        }
    }
}
