//! Golden schema descriptors: every versioned report surface in the
//! workspace is pinned by a descriptor under `tests/schemas/` listing the
//! key paths the surface may emit. This test renders one exemplar
//! document per surface, harvests every tagged subobject, and
//! byte-compares the resulting descriptors against the goldens.
//!
//! Regenerate after a deliberate schema change with:
//!
//! ```text
//! UPDATE_SCHEMAS=1 cargo test --test schema_drift
//! ```
//!
//! Renaming or removing a key within the same version tag fails here;
//! the fix is to bump the surface's `/N` suffix and regenerate (the
//! static side of the same contract is `rlc-audit`'s A3xx tier).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use rlc_audit::schema::{descriptor_file_name, descriptor_json, key_paths};
use rlc_audit::{run as audit_run, AuditOptions};
use rlc_engine::{Batch, CoupleBatch, Engine, SynthBatch};
use rlc_lint::{lint_deck, render_document};
use rlc_obs::json::{parse, Value};
use rlc_obs::{Snapshot, SpanStat, TimeSource, ValueStat};
use rlc_serve::{serve_stdio, ServeConfig, TelemetryConfig};
use rlc_tree::coupled::CoupledGroup;
use rlc_verify::{Conformance, CorpusSpec, Oracle, SynthConformance, SynthSpec};

/// Every versioned surface the workspace ships, in descriptor order.
const SURFACES: &[&str] = &[
    "rlc-audit/1",
    "rlc-couple/1",
    "rlc-engine-couple/1",
    "rlc-engine-synth/1",
    "rlc-engine/1",
    "rlc-lint/1",
    "rlc-obs/1",
    "rlc-serve/1",
    "rlc-synth/1",
    "rlc-trace/1",
    "rlc-verify-synth/1",
    "rlc-verify/1",
];

const LINE_DECK: &str = "R1 in n1 25\nC1 n1 0 0.5p\nL2 n1 n2 5n\nC2 n2 0 1p\n";

const COUPLED_DECK: &str = "\
.net victim
R1 in n1 100
L1 n1 n2 1n
C1 n2 0 1p
.net agg
R1 in m1 40
C1 m1 0 0.3p
K1 victim.n2 agg.m1 0.1p
";

const SYNTH_DECK: &str = "\
R1 in n1 900
C1 n1 0 0.9p
.lib bufx r=120 cin=5f tin=15p
.driver 100
";

/// Walks a parsed document and, for every subobject tagged with a
/// `"schema"` or `"proto"` version string, merges that subobject's key
/// paths into the per-tag union.
fn harvest(doc: &Value, tags: &mut BTreeMap<String, BTreeSet<String>>) {
    match doc {
        Value::Object(map) => {
            let tag = doc
                .get("schema")
                .or_else(|| doc.get("proto"))
                .and_then(Value::as_str);
            if let Some(tag) = tag {
                if tag.starts_with("rlc-") && tag.contains('/') {
                    key_paths(doc, "", tags.entry(tag.to_owned()).or_default());
                }
            }
            for value in map.values() {
                harvest(value, tags);
            }
        }
        Value::Array(items) => {
            for item in items {
                harvest(item, tags);
            }
        }
        _ => {}
    }
}

fn harvest_text(text: &str, tags: &mut BTreeMap<String, BTreeSet<String>>) {
    let doc = parse(text).unwrap_or_else(|e| panic!("exemplar is not valid JSON: {e:?}\n{text}"));
    harvest(&doc, tags);
}

fn logical_time_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        telemetry: TelemetryConfig {
            time: TimeSource::Logical { quantum_ns: 32 },
            ..TelemetryConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// One exemplar document per surface, chosen to exercise both the success
/// and the error shape of each report wherever the surface has both.
fn exemplars() -> BTreeMap<String, BTreeSet<String>> {
    let mut tags: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    // rlc-obs/1: a hand-built snapshot with every section populated.
    let snapshot = Snapshot {
        counters: vec![("sim.steps".to_owned(), 2000)],
        values: vec![(
            "residual".to_owned(),
            ValueStat {
                count: 2,
                sum: 3.0,
                min: 1.0,
                max: 2.0,
            },
        )],
        spans: vec![(
            "eval".to_owned(),
            SpanStat {
                count: 1,
                total_ns: 120,
                self_ns: 120,
            },
        )],
    };
    harvest_text(&snapshot.to_json(), &mut tags);

    // rlc-engine/1: one healthy net, one parse failure.
    let mut batch = Batch::new();
    batch.push_deck("good", LINE_DECK);
    batch.push_deck("broken", "R1 in n1 oops\n");
    harvest_text(&Engine::with_workers(1).run(&batch).to_json(), &mut tags);

    // rlc-engine-couple/1 wrapping per-group rlc-couple/1 lines.
    let mut couple_batch = CoupleBatch::new();
    couple_batch.push_deck("bus", COUPLED_DECK);
    couple_batch.push_deck("broken", ".net a\nR1 in n1 oops\n");
    harvest_text(
        &Engine::with_workers(1).run_couple(&couple_batch).to_json(),
        &mut tags,
    );

    // rlc-couple/1 directly, for the standalone group report.
    let group = CoupledGroup::parse(COUPLED_DECK).expect("coupled deck parses");
    harvest_text(
        &rlc_couple::analyze_group(&group, "bus").to_json(),
        &mut tags,
    );

    // rlc-engine-synth/1 wrapping per-net rlc-synth/1 lines.
    let mut synth_batch = SynthBatch::new();
    synth_batch.push_deck("clk", SYNTH_DECK);
    synth_batch.push_deck("broken", ".lib b r=100 cin=4f tin=1p\nR1 in n1 oops\n");
    harvest_text(
        &Engine::with_workers(1).run_synth(&synth_batch).to_json(),
        &mut tags,
    );

    // rlc-verify/1: a tiny seeded conformance corpus.
    let conformance = Conformance::with_oracle(Oracle::with_max_steps(20_000));
    let spec = CorpusSpec {
        seed: 7,
        nets: 2,
        max_sections: 5,
    };
    harvest_text(&conformance.run(&spec).to_json(), &mut tags);

    // rlc-verify-synth/1: a tiny seeded synthesis-verification run.
    let synth_conf = SynthConformance {
        oracle: Oracle::with_max_steps(20_000),
        ..SynthConformance::default()
    };
    let synth_spec = SynthSpec {
        seed: 7,
        nets: 2,
        max_sections: 5,
    };
    harvest_text(&synth_conf.run(&synth_spec).to_json(), &mut tags);

    // rlc-lint/1: one clean deck, one deck with diagnostics.
    let reports = vec![
        ("good".to_owned(), lint_deck(LINE_DECK)),
        ("bad".to_owned(), lint_deck("R1 in n1 oops\n")),
    ];
    harvest_text(&render_document(&reports), &mut tags);

    // rlc-serve/1 (every response type) and the rlc-trace/1 report nested
    // in `metrics`. Logical time keeps the transcript deterministic.
    let config = logical_time_config();
    let input = format!(
        "analyze name=good\n{LINE_DECK}.\n\
         analyze name=broken\nR1 in n1 oops\n.\n\
         analyze name=gated lint=deny\n* empty deck\n.\n\
         couple name=bus\n{COUPLED_DECK}.\n\
         optimize name=clk\n{SYNTH_DECK}.\n\
         lint name=checked\n{LINE_DECK}.\n\
         probe\nmetrics\ntrace last=2\nshutdown\n"
    );
    let mut output = Vec::new();
    serve_stdio(config, &mut input.as_bytes(), &mut output).expect("stdio session");
    for line in String::from_utf8(output).expect("utf8 output").lines() {
        harvest_text(line, &mut tags);
    }

    // A framing error answers `bad_request` and ends that session, so it
    // gets a transcript of its own.
    let config = logical_time_config();
    let mut output = Vec::new();
    serve_stdio(config, &mut "bogus verb\n".as_bytes(), &mut output).expect("stdio session");
    for line in String::from_utf8(output).expect("utf8 output").lines() {
        harvest_text(line, &mut tags);
    }

    // rlc-audit/1: the audit's own report over its fixture corpus, which
    // deterministically populates both findings and waivers.
    let fixture_root = Path::new("crates/audit/tests/fixtures");
    let report = audit_run(&AuditOptions::new(fixture_root)).expect("audit over fixtures");
    assert!(!report.findings.is_empty() && !report.waivers.is_empty());
    harvest_text(&report.to_json(), &mut tags);

    tags
}

#[test]
fn schema_descriptors_are_current() {
    let tags = exemplars();
    let found: Vec<&str> = tags.keys().map(String::as_str).collect();
    assert_eq!(
        found, SURFACES,
        "the set of versioned surfaces changed; update SURFACES and \
         regenerate with UPDATE_SCHEMAS=1 cargo test --test schema_drift"
    );

    let dir = Path::new("tests/schemas");
    if std::env::var_os("UPDATE_SCHEMAS").is_some() {
        std::fs::create_dir_all(dir).expect("create tests/schemas");
        for (tag, keys) in &tags {
            let path = dir.join(descriptor_file_name(tag));
            std::fs::write(&path, descriptor_json(tag, keys)).expect("write descriptor");
        }
    }

    let expected_files: BTreeSet<String> = tags.keys().map(|t| descriptor_file_name(t)).collect();
    let mut actual_files: BTreeSet<String> = BTreeSet::new();
    for entry in
        std::fs::read_dir(dir).expect("tests/schemas exists (regenerate with UPDATE_SCHEMAS=1)")
    {
        let name = entry
            .expect("dir entry")
            .file_name()
            .to_string_lossy()
            .into_owned();
        if name.ends_with(".json") {
            actual_files.insert(name);
        }
    }
    assert_eq!(
        actual_files, expected_files,
        "stray or missing descriptor files under tests/schemas"
    );

    for (tag, keys) in &tags {
        let path = dir.join(descriptor_file_name(tag));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing descriptor {}: {e}", path.display()));
        let rendered = descriptor_json(tag, keys);
        assert_eq!(
            golden, rendered,
            "schema drift in {tag}: key paths changed without bumping the \
             version; bump /N or regenerate with UPDATE_SCHEMAS=1 if the \
             change is deliberate"
        );
    }
}
