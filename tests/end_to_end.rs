//! Cross-crate integration tests: the closed-form model against the
//! transient simulator, mirroring the accuracy claims of the paper's
//! Section V.

use equivalent_elmore::prelude::*;

/// Simulated 50% delay at `node` for a unit step.
fn sim_delay(net: &RlcTree, node: NodeId, model_delay: Time) -> Time {
    let options = SimOptions::new(
        Time::from_seconds(model_delay.as_seconds() / 400.0),
        Time::from_seconds(model_delay.as_seconds() * 40.0),
    );
    simulate(net, &Source::step(1.0), &options, &[node])[0]
        .delay_50(1.0)
        .expect("signal crosses 50%")
}

fn relative_error(model: Time, reference: Time) -> f64 {
    ((model - reference).as_seconds() / reference.as_seconds()).abs()
}

fn section(r: f64, l_nh: f64, c_pf: f64) -> RlcSection {
    RlcSection::new(
        Resistance::from_ohms(r),
        Inductance::from_nanohenries(l_nh),
        Capacitance::from_picofarads(c_pf),
    )
}

#[test]
fn balanced_fig5_delay_error_stays_small() {
    // Paper Section V-B: a few-percent delay error for the balanced Fig. 5
    // tree (the paper reports < 4% for its particular element values, which
    // the available text does not preserve; across a spread of values we
    // hold the same single-digit envelope).
    for (l, c) in [(2.0, 0.4), (5.0, 0.5), (8.0, 0.25)] {
        let (net, nodes) = topology::fig5(section(25.0, l, c));
        let timing = TreeAnalysis::new(&net);
        let model = timing.delay_50_exact(nodes.n7);
        let reference = sim_delay(&net, nodes.n7, model);
        let err = relative_error(model, reference);
        assert!(err < 0.07, "L={l} nH, C={c} pF: error {err}");
    }
}

#[test]
fn asymmetric_trees_degrade_gracefully() {
    // Paper Fig. 12: accuracy deteriorates as the tree becomes more
    // asymmetric, but the delay error stays bounded (the paper quotes up to
    // ~20% for highly asymmetric trees). Measure the worst sink.
    let worst = |asym: f64| {
        let (net, nodes) = topology::fig5_asymmetric(asym, section(25.0, 4.0, 0.4));
        let timing = TreeAnalysis::new(&net);
        [nodes.n4, nodes.n7]
            .into_iter()
            .map(|sink| {
                let model = timing.delay_50_exact(sink);
                relative_error(model, sim_delay(&net, sink, model))
            })
            .fold(0.0f64, f64::max)
    };
    let mild = worst(2.0);
    let severe = worst(8.0);
    assert!(mild < 0.25, "asym=2 worst-sink error {mild}");
    assert!(severe < 0.25, "asym=8 worst-sink error {severe}");
    assert!(
        severe > mild,
        "error should grow with asymmetry: asym=2 {mild} vs asym=8 {severe}"
    );
}

#[test]
fn flat_branching_beats_binary_branching() {
    // Paper Section V-C / Fig. 13: with the same 16 sinks, a branching
    // factor of 16 (2 levels) is modeled more accurately than binary
    // branching (5 levels).
    let binary = topology::balanced_tree(5, 2, section(25.0, 2.0, 0.2));
    let flat = topology::balanced_tree(2, 16, section(25.0, 2.0, 0.2));
    let err_of = |net: &RlcTree| {
        let sink = net.leaves().next().expect("has sinks");
        let timing = TreeAnalysis::new(net);
        let model = timing.delay_50(sink);
        relative_error(model, sim_delay(net, sink, model))
    };
    let e_binary = err_of(&binary);
    let e_flat = err_of(&flat);
    assert!(
        e_flat < e_binary,
        "flat {e_flat} should beat binary {e_binary}"
    );
}

#[test]
fn error_grows_with_tree_depth() {
    // Paper Section V-D / Fig. 14: accuracy decreases as the number of
    // levels increases; "for a single line, the depth represents the number
    // of sections". Discretize one physical wire (fixed total R, L, C) into
    // more and more sections: the true response approaches a transmission
    // line, which a two-pole model fits progressively worse.
    let err_at_sections = |n: usize| {
        let sec = section(50.0 / n as f64, 10.0 / n as f64, 2.0 / n as f64);
        let (net, sink) = topology::single_line(n, sec);
        let timing = TreeAnalysis::new(&net);
        let model = timing.delay_50_exact(sink);
        relative_error(model, sim_delay(&net, sink, model))
    };
    let shallow = err_at_sections(2);
    let deep = err_at_sections(12);
    assert!(
        deep > shallow,
        "deep-line error {deep} should exceed shallow-line error {shallow}"
    );
    assert!(
        shallow < 0.15 && deep < 0.25,
        "errors stay bounded: {shallow}, {deep}"
    );
}

#[test]
fn sinks_are_modeled_better_than_internal_nodes() {
    // Paper Section V-E / Fig. 15: accuracy is worst near the source and
    // best at the sinks ("typically the location of greatest interest").
    let net = topology::balanced_tree(5, 2, section(20.0, 2.0, 0.3));
    let timing = TreeAnalysis::new(&net);
    let sink = net.leaves().next().expect("has sinks");
    let path = net.path_from_root(sink);
    let err_at = |node: NodeId| {
        let model = timing.delay_50(node);
        relative_error(model, sim_delay(&net, node, model))
    };
    // Compare the first-level node with the sink.
    let near_source = err_at(path[1]);
    let at_sink = err_at(sink);
    assert!(
        at_sink < near_source,
        "sink error {at_sink} should be below near-source error {near_source}"
    );
}

#[test]
fn exponential_inputs_are_more_accurate_than_steps() {
    // Paper Section V-A / Fig. 9: error decreases as input rise time grows.
    let (net, _, o2) = topology::fig8();
    let timing = TreeAnalysis::new(&net);
    let model = timing.model(o2);
    let base_delay = model.delay_50();
    let options = SimOptions::new(
        Time::from_seconds(base_delay.as_seconds() / 400.0),
        Time::from_seconds(base_delay.as_seconds() * 60.0),
    );

    let mut errors = Vec::new();
    for factor in [0.05, 1.0, 5.0] {
        let tau = Time::from_seconds(base_delay.as_seconds() * factor);
        let wave = &simulate(&net, &Source::exponential(1.0, tau), &options, &[o2])[0];
        // Maximum waveform error between the closed form (eqs. 44–48) and
        // the simulator, normalized to the supply.
        let max_err = wave
            .times()
            .iter()
            .step_by(8)
            .map(|&t| (model.exp_input_response(tau, t) - wave.sample_at(t)).abs())
            .fold(0.0f64, f64::max);
        errors.push(max_err);
    }
    assert!(
        errors[2] < errors[1] && errors[1] < errors[0],
        "errors should shrink with slower inputs: {errors:?}"
    );
}

#[test]
fn overshoot_and_settling_match_simulation_for_underdamped_tree() {
    let (net, sink) = topology::single_line(2, section(40.0, 5.0, 0.4));
    let timing = TreeAnalysis::new(&net);
    let model = timing.model(sink);
    assert!(model.is_underdamped());

    let t_settle = model.settling_time(0.02);
    let options = SimOptions::new(
        Time::from_seconds(t_settle.as_seconds() / 4000.0),
        t_settle * 2.0,
    );
    let wave = &simulate(&net, &Source::step(1.0), &options, &[sink])[0];

    let model_os = model.max_overshoot().expect("underdamped");
    let sim_os = wave.overshoot_fraction(1.0);
    assert!(
        (model_os - sim_os).abs() < 0.1,
        "overshoot: model {model_os} vs sim {sim_os}"
    );

    let model_ts = model.settling_time(0.1);
    let sim_ts = wave.settling_time(1.0, 0.1).expect("settles");
    let ratio = model_ts.as_seconds() / sim_ts.as_seconds();
    assert!(
        (0.5..2.0).contains(&ratio),
        "settling: model {model_ts} vs sim {sim_ts}"
    );
}

#[test]
fn netlist_roundtrip_preserves_timing() {
    use equivalent_elmore::tree::netlist;
    let (net, nodes) = topology::fig5(section(25.0, 4.0, 0.4));
    let timing = TreeAnalysis::new(&net);
    let deck = netlist::write(&net);
    let parsed = netlist::Netlist::parse(&deck).expect("own output parses");
    // The round-tripped tree has split R/L sections, but the sums — and
    // therefore the model at the corresponding nodes — are identical.
    let rt_node = parsed
        .node(&format!("n{}", nodes.n7.index()))
        .expect("named node");
    let rt_timing = TreeAnalysis::new(parsed.tree());
    let a = timing.model(nodes.n7);
    let b = rt_timing.model(rt_node);
    assert!((a.zeta() - b.zeta()).abs() < 1e-9);
    assert!(
        (a.delay_50().as_seconds() - b.delay_50().as_seconds()).abs()
            < 1e-12 * a.delay_50().as_seconds()
    );
}

#[test]
fn eed_tracks_awe_on_moderately_damped_trees() {
    use equivalent_elmore::awe::awe_at_node;
    let (net, sink) = topology::single_line(5, section(30.0, 1.5, 0.3));
    let timing = TreeAnalysis::new(&net);
    let model_delay = timing.delay_50(sink);
    let awe = awe_at_node(&net, sink, 4).expect("AWE builds");
    let awe_delay = awe.delay_50().expect("crosses 50%");
    let diff = relative_error(model_delay, awe_delay);
    assert!(diff < 0.08, "EED vs AWE(4): {diff}");
}

/// Golden-report regression: the `rlc-engine/1` and `rlc-couple/1` reports
/// for the checked-in example decks are frozen byte-for-byte in
/// `tests/golden/`. Any kernel change that perturbs report bytes — a
/// reassociated float, a reordered sink, a format drift — fails here before
/// it can silently invalidate archived reports. Regenerate intentionally
/// with `UPDATE_GOLDEN=1 cargo test --test end_to_end golden`.
mod golden {
    use equivalent_elmore::engine::{Batch, CoupleBatch, Engine, SynthBatch};
    use std::fs;
    use std::path::{Path, PathBuf};

    fn golden_path(name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name)
    }

    fn check_golden(name: &str, actual: &str) {
        let path = golden_path(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            fs::write(&path, actual).expect("write golden file");
            return;
        }
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing {}; regenerate with UPDATE_GOLDEN=1", name));
        assert_eq!(
            actual, expected,
            "{name} drifted from the checked-in golden report"
        );
    }

    #[test]
    fn engine_report_for_example_decks_is_frozen() {
        // Relative path: integration tests run with CWD at the workspace
        // root, and the batch embeds the path as the net name — keeping it
        // relative keeps the golden bytes machine-independent.
        let batch = Batch::from_dir("examples/decks").expect("decks dir exists");
        let report = Engine::with_workers(1).run(&batch);
        // The report must not depend on the worker count...
        assert_eq!(
            report.to_json(),
            Engine::with_workers(4).run(&batch).to_json()
        );
        // ...and must not drift across kernel swaps.
        check_golden("engine_decks.json", &report.to_json());
    }

    #[test]
    fn synth_report_for_example_decks_is_frozen() {
        // `SynthBatch::from_dir` keeps only the decks carrying synthesis
        // cards, so this freezes exactly the `synth_*.sp` examples.
        let batch = SynthBatch::from_dir("examples/decks").expect("decks dir exists");
        assert!(
            !batch.is_empty(),
            "examples/decks must hold a synthesis deck"
        );
        let report = Engine::with_workers(1).run_synth(&batch);
        assert_eq!(
            report.to_json(),
            Engine::with_workers(4).run_synth(&batch).to_json()
        );
        check_golden("synth_clocknet.json", &report.to_json());
    }

    #[test]
    fn couple_report_for_example_decks_is_frozen() {
        let deck = fs::read_to_string("examples/decks/coupled_bus.sp").expect("deck exists");
        let mut batch = CoupleBatch::new();
        batch.push_deck("examples/decks/coupled_bus.sp", deck);
        let report = Engine::with_workers(1).run_couple(&batch);
        assert_eq!(
            report.to_json(),
            Engine::with_workers(4).run_couple(&batch).to_json()
        );
        check_golden("couple_bus.json", &report.to_json());
    }
}
