//! Netlist-driven timing report: read a SPICE-like deck, analyze every
//! sink, flag underdamped nets, and emit the tree back as a netlist.
//!
//! This is the "drop-in tool" shape of the library: the same flow an RC
//! Elmore timer provides, generalized to RLC.
//!
//! Run with: `cargo run --example netlist_analysis`

use equivalent_elmore::prelude::*;
use equivalent_elmore::tree::netlist;

/// A small bus: a driver feeding two branches through a shared trunk, with
/// explicit inductors on the wide trunk wires.
const DECK: &str = "\
* two-sink RLC bus
.input in
R1 in  t1m 12
L1 t1m t1  3n
C1 t1  0   0.30p
R2 t1  t2m 12
L2 t2m t2  3n
C2 t2  0   0.30p
* branch A: short, lightly loaded
R3 t2  a1  20
C3 a1  0   0.15p
R4 a1  a2  20
C4 a2  0   0.25p
* branch B: long, heavily loaded
R5 t2  b1m 15
L5 b1m b1  2n
C5 b1  0   0.20p
R6 b1  b2m 15
L6 b2m b2  2n
C6 b2  0   0.45p
.end
";

fn main() {
    let parsed = netlist::Netlist::parse(DECK).expect("deck is well-formed");
    let net = parsed.tree();
    println!(
        "parsed {} sections, {} sinks, total C = {}",
        net.len(),
        net.leaves().count(),
        net.total_capacitance()
    );

    let timing = TreeAnalysis::new(net);

    // Report per named sink.
    println!("\nsink   ζ       damping             50% delay    rise time    overshoot");
    let mut named: Vec<(&str, NodeId)> = parsed.nodes().filter(|&(_, n)| net.is_leaf(n)).collect();
    named.sort_by_key(|&(name, _)| name);
    for (name, node) in named {
        let m = timing.model(node);
        let overshoot = m
            .max_overshoot()
            .map(|o| format!("{:.1}%", o * 100.0))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{name:<6} {:<7.3} {:<19} {:<12} {:<12} {overshoot}",
            m.zeta(),
            m.damping().to_string(),
            m.delay_50().to_string(),
            m.rise_time().to_string(),
        );
    }

    // Flag nets that ring badly enough to threaten signal integrity.
    println!();
    for t in timing.sink_timings() {
        if let Some(os) = t.model.max_overshoot() {
            if os > 0.15 {
                println!(
                    "warning: {} overshoots by {:.0}% — consider damping or shielding",
                    t.node,
                    os * 100.0
                );
            }
        }
    }

    // Validate the worst sink against simulation.
    let (critical, model_delay) = timing.critical_sink().expect("has sinks");
    let options = SimOptions::new(
        Time::from_seconds(model_delay.as_seconds() / 300.0),
        Time::from_seconds(model_delay.as_seconds() * 30.0),
    );
    let wave = &simulate(net, &Source::step(1.0), &options, &[critical])[0];
    let sim_delay = wave.delay_50(1.0).expect("crosses 50%");
    println!(
        "\ncritical sink {critical}: model {model_delay}, simulated {sim_delay} ({:+.1}%)",
        (model_delay.as_seconds() - sim_delay.as_seconds()) / sim_delay.as_seconds() * 100.0
    );

    // Round-trip the tree back out as a netlist.
    let out = netlist::write(net);
    println!("\nregenerated netlist ({} lines):", out.lines().count());
    for line in out.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
}
