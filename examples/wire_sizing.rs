//! Wire sizing with a continuous delay model — the synthesis use case that
//! motivates closed-form delay expressions (paper Section I and the
//! references on wire sizing under the Elmore model [17]–[23]).
//!
//! Widening a wire lowers its resistance but raises its capacitance, so the
//! sink delay has an interior optimum. Because the paper's delay expression
//! is a *continuous* function of the electrical parameters, it can drive a
//! derivative-free optimizer directly — no simulation in the loop. This
//! example sizes a 3 mm point-to-point line with golden-section search on
//! the closed-form delay, then verifies the chosen width with transient
//! simulation.
//!
//! Run with: `cargo run --example wire_sizing`

use equivalent_elmore::prelude::*;

const LINE_LENGTH_UM: f64 = 3000.0;
const SEGMENTS: usize = 8;
/// Receiver gate load.
const LOAD: f64 = 120.0; // fF

/// Builds the sized line and returns (tree, sink).
fn build(width: f64) -> (RlcTree, NodeId) {
    let wire = WireModel::MINIMUM_WIDTH_SIGNAL.widened(width);
    let mut net = RlcTree::new();
    let sink = wire.route(&mut net, None, LINE_LENGTH_UM, SEGMENTS);
    let sec = net.section_mut(sink);
    *sec = sec.with_added_capacitance(Capacitance::from_femtofarads(LOAD));
    (net, sink)
}

/// Closed-form 50% delay of the sized line, in seconds.
fn delay_model(width: f64) -> f64 {
    let (net, sink) = build(width);
    TreeAnalysis::new(&net).delay_50(sink).as_seconds()
}

fn main() {
    println!("sizing a {LINE_LENGTH_UM} µm line driving {LOAD} fF\n");
    println!("width   ζ(sink)   model 50% delay");
    for w in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let (net, sink) = build(w);
        let timing = TreeAnalysis::new(&net);
        println!(
            "{w:>5.1}   {:>7.3}   {}",
            timing.model(sink).zeta(),
            timing.delay_50(sink)
        );
    }

    // The library's sizing optimizer (golden-section on the closed form).
    let sized = equivalent_elmore::opt::sizing::optimal_width(
        &WireModel::MINIMUM_WIDTH_SIGNAL,
        LINE_LENGTH_UM,
        Capacitance::from_femtofarads(LOAD),
        1.0,
        40.0,
    );
    let best = sized.width;
    let best_delay = delay_model(best);
    println!("\noptimal width factor (golden-section on the closed form): {best:.2}");
    println!("model delay at optimum: {}", Time::from_seconds(best_delay));

    // Verify with simulation: the optimum found on the model should be
    // within a few percent of the simulated optimum delay curve.
    let simulate_delay = |w: f64| {
        let (net, sink) = build(w);
        let rough = delay_model(w);
        let options = SimOptions::new(
            Time::from_seconds(rough / 300.0),
            Time::from_seconds(rough * 20.0),
        );
        simulate(&net, &Source::step(1.0), &options, &[sink])[0]
            .delay_50(1.0)
            .expect("signal crosses 50%")
            .as_seconds()
    };
    let sim_at_best = simulate_delay(best);
    println!(
        "simulated delay at chosen width: {} ({:+.1}% vs model)",
        Time::from_seconds(sim_at_best),
        (best_delay - sim_at_best) / sim_at_best * 100.0
    );
    // Fidelity check (the paper's argument for Elmore-class models): the
    // model's optimum is near-optimal under simulation too.
    let probe = [best * 0.5, best * 0.75, best, best * 1.5, best * 2.0];
    let sim_delays: Vec<f64> = probe.iter().map(|&w| simulate_delay(w)).collect();
    let best_probe = sim_delays.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "fidelity: simulated delay at model optimum is within {:.2}% of the best probed width",
        (sim_at_best - best_probe) / best_probe * 100.0
    );
}
