//! EED-driven buffer insertion end to end: parse a synthesis deck
//! (netlist + `.lib` buffer library + `.driver`/`.require` constraint
//! cards), run the van Ginneken-style DP and the joint wire-sizing pass,
//! then push the same deck through the engine's `SynthBatch` worker pool
//! and show the report is byte-identical at any worker count.
//!
//! Run with: `cargo run --example buffer_synthesis`

use equivalent_elmore::engine::{Engine, SynthBatch};
use equivalent_elmore::synth::{synthesize, SynthConfig};
use equivalent_elmore::tree::synth::SynthDeck;

const DECK_PATH: &str = "examples/decks/synth_clocknet.sp";

fn main() {
    let deck_text = std::fs::read_to_string(DECK_PATH).expect("example deck exists");
    let deck = SynthDeck::parse(&deck_text).expect("deck parses");

    // --- 1. In-process: the synthesizer as a library call.
    let config = SynthConfig::default();
    let result = synthesize(&deck, &config);
    println!(
        "{}: {} candidate sites, {} buffers inserted (library \"{}\"), width factor {:.2}",
        DECK_PATH,
        result.sites,
        result.buffers.len(),
        deck.buffer().name,
        result.width
    );
    println!(
        "critical 50% delay: {:.1} ps -> {:.1} ps ({:.1}% faster by the EED model)",
        result.baseline * 1e12,
        result.optimized * 1e12,
        100.0 * (result.baseline - result.optimized) / result.baseline
    );
    for slack in &result.slacks {
        println!(
            "  .require n{}: required {:.1} ps, arrives {:.1} ps, slack {:+.1} ps",
            slack.node.index(),
            slack.required * 1e12,
            slack.arrival * 1e12,
            slack.slack * 1e12
        );
    }

    // --- 2. Through the engine pool: submission-order determinism means
    // the rlc-synth/1 report bytes cannot depend on the worker count.
    let batch = SynthBatch::from_dir("examples/decks").expect("decks dir exists");
    let single = Engine::with_workers(1).run_synth(&batch);
    let pooled = Engine::with_workers(4).run_synth(&batch);
    assert_eq!(single.to_json(), pooled.to_json());
    println!(
        "\nengine: {} synthesis decks, report byte-identical at 1 and 4 workers",
        batch.len()
    );
    print!("{}", single.to_json());
}
