//! Optimal buffer placement in a branching net — van Ginneken's dynamic
//! program (the paper's reference [27]) driven by Elmore time constants,
//! then re-timed with the full RLC model.
//!
//! The scenario: a weak driver, a long trunk, a critical near sink, and a
//! heavily loaded far branch. The DP discovers that buffering the heavy
//! branch shields the critical path.
//!
//! Run with: `cargo run --example buffer_insertion`

use equivalent_elmore::opt::{buffering, repeater::Repeater};
use equivalent_elmore::prelude::*;

fn main() {
    // Build the net: 6-section trunk, then a split into
    //  - a short branch to the critical receiver (small load), and
    //  - a long branch to a bank of receivers (large load).
    let wire = WireModel::MINIMUM_WIDTH_SIGNAL;
    let mut net = RlcTree::new();
    let split = wire.route(&mut net, None, 1500.0, 6);
    let critical = wire.route(&mut net, Some(split), 400.0, 2);
    {
        let sec = net.section_mut(critical);
        *sec = sec.with_added_capacitance(Capacitance::from_femtofarads(20.0));
    }
    let far = wire.route(&mut net, Some(split), 2500.0, 6);
    {
        let sec = net.section_mut(far);
        *sec = sec.with_added_capacitance(Capacitance::from_picofarads(1.2));
    }

    let driver = Resistance::from_ohms(800.0);
    let lib = Repeater::typical_cmos_250nm();
    let size = 15.0;

    println!(
        "net: {} sections, {} sinks, driver {driver}",
        net.len(),
        net.leaves().count()
    );

    // Baseline: no buffers.
    let unbuffered_elmore = buffering::elmore_delay_of(&net, &[], driver, &lib, size);
    let unbuffered_rlc = buffering::evaluate(&net, &[], driver, &lib, size);
    println!("\nunbuffered: Elmore constant {unbuffered_elmore}, RLC 50% delay {unbuffered_rlc}");

    // Van Ginneken.
    let sol = buffering::van_ginneken(&net, driver, &lib, size);
    println!(
        "\nvan Ginneken places {} buffer(s) at {:?}",
        sol.buffers.len(),
        sol.buffers
    );
    println!("predicted Elmore constant: {}", sol.elmore_delay);

    // Re-time the chosen placement with the paper's RLC model.
    let buffered_rlc = buffering::evaluate(&net, &sol.buffers, driver, &lib, size);
    println!("RLC 50% delay with buffers: {buffered_rlc}");
    println!(
        "improvement: {:.1}% (RLC-timed)",
        (1.0 - buffered_rlc.as_seconds() / unbuffered_rlc.as_seconds()) * 100.0
    );

    // Fidelity check (the paper's core argument for Elmore-class models):
    // the Elmore-optimal placement is near-optimal under the better model.
    // Compare against a few hand perturbations.
    let mut better_found = false;
    for &b in &sol.buffers {
        for candidate in [net.parent(b), net.children(b).first().copied()] {
            let Some(alt) = candidate else { continue };
            let mut moved = sol.buffers.clone();
            for slot in &mut moved {
                if *slot == b {
                    *slot = alt;
                }
            }
            let d = buffering::evaluate(&net, &moved, driver, &lib, size);
            if d < buffered_rlc * 0.98 {
                better_found = true;
            }
        }
    }
    println!(
        "fidelity: {}",
        if better_found {
            "a neighbouring placement beats the Elmore choice by >2% (rare)"
        } else {
            "no neighbouring placement beats the Elmore choice by >2% — high fidelity"
        }
    );
}
