//! Corpus-scale timing with the batch engine, plus incremental what-if
//! probing of the critical net.
//!
//! This is the "sign-off sweep" shape of the library: time every net of a
//! block in one call (worker pool, per-net failure isolation,
//! deterministic report), find the critical net, then probe candidate
//! fixes on it with `IncrementalAnalysis` — O(depth) per candidate
//! instead of a fresh O(n) analysis — and verify the chosen fix.
//!
//! Run with: `cargo run --example batch_timing`

use equivalent_elmore::engine::{Batch, Engine};
use equivalent_elmore::prelude::*;

fn main() {
    // --- 1. Assemble a small corpus: in-memory trees and netlist decks.
    let wire = WireModel::IBM_COPPER_GLOBAL;
    let mut clock = RlcTree::new();
    let spine = wire.route(&mut clock, None, 2000.0, 8);
    wire.route(&mut clock, Some(spine), 1000.0, 4);
    wire.route(&mut clock, Some(spine), 1000.0, 4);

    let narrow = WireModel::MINIMUM_WIDTH_SIGNAL;
    let mut bus = RlcTree::new();
    narrow.route(&mut bus, None, 3000.0, 12);

    let mut batch = Batch::new();
    batch.push_tree("clock-h1", clock);
    batch.push_tree("data-bus", bus);
    batch.push_deck(
        "tiny-net",
        "* a two-section stub\nR1 in n1 25\nC1 n1 0 0.5p\nR2 n1 n2 25\nC2 n2 0 0.5p\n",
    );
    // A malformed deck: isolated into its slot, the rest still times.
    batch.push_deck("broken-net", "R1 in n1 twenty-five\n");

    // --- 2. One call times everything. The report is in submission order
    // and byte-identical for any worker count.
    let report = Engine::new().run(&batch);
    println!("corpus of {} nets:", batch.len());
    let mut critical: Option<(String, f64)> = None;
    for slot in &report.nets {
        match slot {
            Ok(net) => {
                let c = net.critical().expect("nets here have sinks");
                println!(
                    "  {:<12} {:>3} sections, critical sink {} at {}",
                    net.name, net.sections, c.node, c.delay_50
                );
                let ps = c.delay_50.as_picoseconds();
                if critical.as_ref().is_none_or(|(_, worst)| ps > *worst) {
                    critical = Some((net.name.clone(), ps));
                }
            }
            Err(e) => println!("  FAILED      {e}"),
        }
    }
    let (name, worst_ps) = critical.expect("at least one net timed");
    println!("critical net: {name} ({worst_ps:.1} ps)\n");
    assert_eq!(report.failures().count(), 1, "only the broken deck fails");

    // --- 3. Probe fixes on the critical net incrementally: what if the
    // first quarter of the bus were routed twice as wide?
    let mut bus = RlcTree::new();
    let sink = narrow.route(&mut bus, None, 3000.0, 12);
    let mut probe = IncrementalAnalysis::new(bus);
    let before = probe.delay_50(sink);

    let path = probe.tree().path_from_root(sink);
    let wide_section = narrow.widened(2.0).section(3000.0 / 12.0);
    let widened_delay = probe.scoped_edit(|p| {
        for &node in &path[..3] {
            p.set_section(node, wide_section);
        }
        p.delay_50(sink)
    });
    println!("data-bus sink delay:   {before}");
    println!("  widen first quarter: {widened_delay} (probed and rolled back)");
    assert_eq!(probe.delay_50(sink), before, "rollback is lossless");
    assert!(widened_delay < before, "wider wire must be faster here");

    // --- 4. Commit the winning edit for real.
    for &node in &path[..3] {
        probe.set_section(node, wide_section);
    }
    probe.commit();
    println!("  committed:           {}", probe.delay_50(sink));

    // The JSON report (schema rlc-engine/1) is ready for tooling:
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"rlc-engine/1\""));
    println!("\nJSON report: {} bytes (schema rlc-engine/1)", json.len());
}
