//! The timing service end to end: in-process `ServeCore` first (cache
//! miss vs. content-addressed hit), then a real TCP round-trip against
//! an ephemeral-port [`Server`] — analyze under both models, probe the
//! live counters, and shut down gracefully for the final report.
//!
//! Run with: `cargo run --example timing_service`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

use equivalent_elmore::serve::{AnalyzeRequest, ServeConfig, ServeCore, Server};

/// A three-section RLC net in `rlc-tree` netlist form.
const DECK: &str = "R1 in n1 25\nL1 n1 n2 5n\nC1 n2 0 1p\n";

fn main() {
    // --- 1. In-process: ServeCore is the server without the socket.
    // The second request is the same circuit (same canonical deck, same
    // model), so it is answered from the cache with zero engine work.
    let core = ServeCore::new(ServeConfig::default());
    let first = core.analyze(AnalyzeRequest::new("clk", DECK.to_owned()));
    let second = core.analyze(AnalyzeRequest::new("clk", DECK.to_owned()));
    println!("miss: {first}");
    println!("hit:  {second}");
    let cache = core.cache_stats();
    println!(
        "cache: {} hit / {} miss; engine jobs: {}\n",
        cache.hits,
        cache.misses,
        core.engine_stats().submitted
    );

    // --- 2. Over TCP, on an ephemeral port. `run` blocks until a client
    // sends `shutdown`, then drains in-flight work and returns the final
    // stats report.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let server_thread = thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut send = |request: &str| {
        writer.write_all(request.as_bytes()).expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        print!("<- {line}");
    };

    send(&format!("analyze name=clk\n{DECK}.\n"));
    send(&format!("analyze name=clk model=elmore\n{DECK}.\n"));
    send("probe\n");
    send("shutdown\n");

    let report = server_thread.join().expect("join").expect("serve");
    println!("\nfinal report: {report}");
}
