//! Clock-distribution analysis: the workload the paper's introduction
//! motivates.
//!
//! Clock networks use wide, low-resistance wires on upper metal layers —
//! exactly where inductance matters most. This example builds a four-level
//! H-tree clock network from physical wire lengths, then:
//!
//! 1. shows that the classic (RC-only) Elmore/Wyatt flow *underestimates*
//!    the clock arrival time and misses the overshoot entirely;
//! 2. computes arrival time, rise time, overshoot, and settling time at
//!    every clock pin with the paper's closed-form model;
//! 3. validates the numbers against transient simulation.
//!
//! Run with: `cargo run --example clock_tree`

use equivalent_elmore::prelude::*;

/// Builds an H-tree: at each level the wire halves in length and the
/// branch count doubles. Returns the tree and its clock pins (sinks).
fn build_h_tree(wire: WireModel, levels: usize, top_length_um: f64) -> RlcTree {
    let mut net = RlcTree::new();
    let mut frontier: Vec<Option<NodeId>> = vec![None];
    let mut length = top_length_um;
    for level in 0..levels {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        // Split each wire into enough lumped sections for accuracy.
        let segments = 4;
        for parent in frontier {
            let end = wire.route(&mut net, parent, length, segments);
            if level + 1 < levels {
                next.push(Some(end));
                next.push(Some(end));
            } else {
                // Leaf level: attach the clocked-latch load capacitance.
                let load = Capacitance::from_femtofarads(50.0);
                let sec = net.section_mut(end);
                *sec = sec.with_added_capacitance(load);
            }
        }
        frontier = next;
        length /= 2.0;
    }
    net
}

fn main() {
    let wire = WireModel::CLOCK_SPINE;
    let net = build_h_tree(wire, 4, 4000.0);
    println!(
        "H-tree: {} sections, {} clock pins, {} total load",
        net.len(),
        net.leaves().count(),
        net.total_capacitance()
    );

    let timing = TreeAnalysis::new(&net);
    let pins: Vec<NodeId> = net.leaves().collect();

    // All pins of a balanced H-tree are electrically identical; report one.
    let pin = pins[0];
    let model = timing.model(pin);
    println!("\nclock pin model: {model}");
    println!("  arrival (50%)      : {}", model.delay_50());
    println!("  rise time (10-90%) : {}", model.rise_time());
    if let Some(os) = model.max_overshoot() {
        println!(
            "  max overshoot      : {:.1}% at {}",
            os * 100.0,
            model.overshoot_time(1).expect("underdamped")
        );
        println!("  settling (±10%)    : {}", model.settling_time(0.1));
    }

    // What the classic RC flow would have said.
    println!("\nclassic Elmore/Wyatt (RC) prediction:");
    println!("  arrival (50%)      : {}", model.wyatt_delay_50());
    println!("  overshoot          : (cannot predict ringing)");

    // Validate against the transient simulator.
    let t_stop = model.settling_time(0.01) * 2.0;
    let dt = Time::from_seconds(model.delay_50().as_seconds() / 400.0);
    let options = SimOptions::new(dt, t_stop);
    let wave = &simulate(&net, &Source::step(1.0), &options, &[pin])[0];
    let sim_delay = wave.delay_50(1.0).expect("clock arrives");
    let model_err =
        (model.delay_50().as_seconds() - sim_delay.as_seconds()).abs() / sim_delay.as_seconds();
    let wyatt_err = (model.wyatt_delay_50().as_seconds() - sim_delay.as_seconds()).abs()
        / sim_delay.as_seconds();
    println!("\nsimulated arrival    : {sim_delay}");
    println!("  equivalent Elmore error : {:.1}%", model_err * 100.0);
    println!("  classic Wyatt error     : {:.1}%", wyatt_err * 100.0);
    println!(
        "  simulated overshoot     : {:.1}%",
        wave.overshoot_fraction(1.0) * 100.0
    );

    // Clock skew under the model: max − min arrival over all pins (zero for
    // a perfectly balanced tree; interesting once the tree is perturbed).
    let arrivals: Vec<Time> = pins.iter().map(|&p| timing.delay_50(p)).collect();
    let max = arrivals.iter().cloned().fold(Time::ZERO, Time::max);
    let min = arrivals
        .iter()
        .cloned()
        .fold(Time::from_seconds(f64::INFINITY), Time::min);
    println!("\nclock skew across {} pins: {}", pins.len(), max - min);
}
