//! Repeater insertion on a long global wire — the flagship synthesis loop
//! that closed-form delay models exist to serve.
//!
//! Shows (1) the figure-of-merit test deciding whether the wire even needs
//! RLC treatment, (2) joint (count, size) repeater optimization on the
//! equivalent-Elmore delay, (3) the classic RC-only Bakoğlu answer
//! over-inserting on an inductive wire, and (4) transient-simulation
//! validation of the chosen stage design.
//!
//! Run with: `cargo run --example repeater_insertion`

use equivalent_elmore::opt::{fom, repeater};
use equivalent_elmore::prelude::*;

fn main() {
    let wire = WireModel::IBM_COPPER_GLOBAL;
    let length_um = 10_000.0; // a 1 cm cross-chip route
    let lib = repeater::Repeater::typical_cmos_250nm();

    // (1) Does inductance matter here at all?
    let rise = Time::from_picoseconds(40.0);
    match fom::inductance_window(&wire, rise) {
        Some((lo, hi)) => {
            println!(
                "inductance matters for lengths in [{lo:.0} µm, {hi:.0} µm]; this route: {length_um} µm"
            );
            println!(
                "→ {}",
                if length_um > lo && length_um < hi {
                    "inside the window: use the RLC model"
                } else {
                    "outside the window: RC would suffice"
                }
            );
        }
        None => println!("wire is too resistive for inductive effects at any length"),
    }

    // (2) Optimize on the RLC model.
    let plan = repeater::optimize(&wire, length_um, &lib);
    println!(
        "\nRLC-aware plan : {} stages, size {:.1}x, end-to-end delay {}",
        plan.count, plan.size, plan.delay
    );
    // Repeaters shorten each driven segment — often INTO the inductance
    // window even when the full route was beyond it.
    let stage_len = length_um / plan.count as f64;
    if fom::is_inductance_significant(&wire, stage_len, rise) {
        println!("note: each {stage_len:.0} µm stage falls inside the inductance window");
    }

    // (3) The RC-only closed form.
    let (k_rc, h_rc) = repeater::bakoglu_rc(&wire, length_um, &lib);
    let k_rc_rounded = k_rc.round().max(1.0) as usize;
    let rc_delay = repeater::total_delay(&wire, length_um, k_rc_rounded, h_rc, &lib);
    println!(
        "Bakoğlu (RC)   : {k_rc_rounded} stages, size {h_rc:.1}x, end-to-end delay {rc_delay}"
    );
    if plan.count < k_rc_rounded {
        println!(
            "→ inductance lets us use {} fewer repeaters for {:+.1}% delay",
            k_rc_rounded - plan.count,
            (plan.delay.as_seconds() / rc_delay.as_seconds() - 1.0) * 100.0
        );
    }

    // (4) Validate one optimized stage against the transient simulator.
    let stage_len = length_um / plan.count as f64;
    let mut stage = RlcTree::new();
    let driver = RlcSection::rc(
        lib.resistance / plan.size,
        lib.output_capacitance * plan.size,
    );
    let root = stage.add_root_section(driver);
    let far = wire.route(&mut stage, Some(root), stage_len, 6);
    let sec = stage.section_mut(far);
    *sec = sec.with_added_capacitance(lib.input_capacitance * plan.size);

    let model_stage = repeater::stage_delay(&wire, stage_len, plan.size, &lib);
    let options = SimOptions::new(
        Time::from_seconds(model_stage.as_seconds() / 400.0),
        Time::from_seconds(model_stage.as_seconds() * 40.0),
    );
    let wave = &simulate(&stage, &Source::step(1.0), &options, &[far])[0];
    let sim_stage = wave.delay_50(1.0).expect("stage settles");
    println!(
        "\nstage validation: model {model_stage} vs simulated {sim_stage} ({:+.1}%)",
        (model_stage.as_seconds() - sim_stage.as_seconds()) / sim_stage.as_seconds() * 100.0
    );
    if let Some(os) = TreeAnalysis::new(&stage).model(far).max_overshoot() {
        println!(
            "stage overshoot: model {:.1}% vs simulated {:.1}%",
            os * 100.0,
            wave.overshoot_fraction(1.0) * 100.0
        );
    }
}
