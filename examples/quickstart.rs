//! Quickstart: analyze an RLC interconnect tree in a few lines.
//!
//! Builds the paper's Fig. 5 example tree, runs the O(n) equivalent-Elmore
//! analysis, and compares its 50% delay prediction at every sink with a
//! full transient simulation.
//!
//! Run with: `cargo run --example quickstart`

use equivalent_elmore::prelude::*;

fn main() {
    // One RLC section: a 25 Ω / 5 nH / 0.5 pF lumped wire segment.
    let section = RlcSection::new(
        Resistance::from_ohms(25.0),
        Inductance::from_nanohenries(5.0),
        Capacitance::from_picofarads(0.5),
    );

    // The paper's Fig. 5 three-level tree (7 sections, 4 sinks).
    let (net, nodes) = topology::fig5(section);

    // --- The paper's model: one O(n) pass gives every node's timing. ---
    let timing = TreeAnalysis::new(&net);
    println!("per-sink timing from the closed-form model:");
    for t in timing.sink_timings() {
        println!(
            "  {}: ζ = {:.3} ({}), 50% delay = {}, rise = {}",
            t.node,
            t.model.zeta(),
            t.model.damping(),
            t.delay_50,
            t.rise_time,
        );
    }

    // --- Golden reference: transient simulation (the AS/X stand-in). ---
    let options = SimOptions::new(Time::from_picoseconds(1.0), Time::from_nanoseconds(30.0));
    let sinks = [nodes.n4, nodes.n5, nodes.n6, nodes.n7];
    let waves = simulate(&net, &Source::step(1.0), &options, &sinks);

    println!("\nmodel vs simulation (50% delay):");
    for (t, wave) in timing.sink_timings().iter().zip(&waves) {
        let sim_delay = wave.delay_50(1.0).expect("signal crosses 50%");
        let err = (t.delay_50.as_seconds() - sim_delay.as_seconds()).abs() / sim_delay.as_seconds()
            * 100.0;
        println!(
            "  {}: model {} vs sim {} ({err:.1}% error)",
            t.node, t.delay_50, sim_delay
        );
    }

    let (critical, delay) = timing.critical_sink().expect("tree has sinks");
    println!("\ncritical sink: {critical} at {delay}");
}
