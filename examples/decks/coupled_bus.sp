* two parallel 1 mm bus bits flanking a victim; neighbours couple at the far end
.net bit0
.input in
R1 in n1 60
L1 n1 n2 1n
C1 n2 0 0.6p
R2 n2 n3 60
L2 n3 n4 1n
C2 n4 0 0.6p
.net victim
.input in
R1 in n1 55
L1 n1 n2 1n
C1 n2 0 0.6p
R2 n2 n3 55
L2 n3 n4 1n
C2 n4 0 0.7p
.net bit1
.input in
R1 in n1 60
L1 n1 n2 1n
C1 n2 0 0.6p
R2 n2 n3 60
L2 n3 n4 1n
C2 n4 0 0.6p
K1 bit0.n4 victim.n4 0.08p
K2 victim.n4 bit1.n4 0.08p
.end
