* 2 mm clock spine splitting into two 1 mm branches (M7 copper)
.input in
R1 in t 50
L1 t t2 2n
C1 t2 0 0.4p
R2 t2 a 60
L2 a a2 1n
C2 a2 0 0.8p
R3 t2 b 60
L3 b b2 1n
C3 b2 0 0.8p
.end
