* 4 mm unbuffered clock distribution trunk forking into two leaf runs;
* the resistive trunk makes repeater insertion pay (rlc-synth optimize)
.input in
R1 in t1 700
L1 t1 t1x 0.2n
C1 t1x 0 0.7p
R2 t1x t2 700
L2 t2 t2x 0.2n
C2 t2x 0 0.7p
R3 t2x t3 700
L3 t3 t3x 0.2n
C3 t3x 0 0.7p
R4 t3x a1 650
C4 a1 0 0.6p
R5 a1 a2 650
C5 a2 0 0.6p
R6 t3x b1 650
C6 b1 0 0.6p
R7 b1 b2 650
C7 b2 0 0.6p
.lib drv2x r=130 cin=5f tin=18p
.lib drv4x r=80 cin=9f tin=22p
.use drv2x
.driver 110
.require a2 2.5n
.require b2 2.5n
.end
