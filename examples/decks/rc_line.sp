* 1 mm minimum-width RC line; inductance negligible at this geometry
.input in
R1 in n1 40
C1 n1 0 0.3p
R2 n1 n2 40
C2 n2 0 0.3p
R3 n2 n3 40
C3 n3 0 0.3p
.end
