//! # Equivalent Elmore Delay for RLC Trees
//!
//! A full reproduction of Y. I. Ismail, E. G. Friedman, and J. L. Neves,
//! *Equivalent Elmore Delay for RLC Trees* (DAC 1999; IEEE TCAD vol. 19
//! no. 1, Jan. 2000): closed-form, always stable, O(n)-computable 50%
//! delay, rise time, overshoot and settling-time expressions for signals in
//! RLC interconnect trees — the generalization of the ubiquitous Elmore
//! delay from RC to inductive wiring.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`] | `rlc-units` | typed electrical quantities |
//! | [`numeric`] | `rlc-numeric` | complex/poly/root/LU kernels |
//! | [`tree`] | `rlc-tree` | RLC tree structure, topologies, wire models, netlists |
//! | [`moments`] | `rlc-moments` | O(n) tree sums and exact moments |
//! | [`eed`] | `eed` | **the paper's model**: ζ/ω_n, delays, overshoots |
//! | [`sim`] | `rlc-sim` | transient simulators (the AS/X substitute) |
//! | [`awe`] | `rlc-awe` | AWE/Padé, Wyatt, Kahng–Muddu comparators |
//! | [`opt`] | `rlc-opt` | repeater insertion, wire sizing, skew, inductance FOM |
//! | [`engine`] | `rlc-engine` | concurrent batch timing, incremental re-analysis |
//! | [`couple`] | `rlc-couple` | coupled-net crosstalk: Miller delay windows, noise bounds |
//! | [`synth`] | `rlc-synth` | EED-driven buffer insertion and joint wire sizing |
//! | [`serve`] | `rlc-serve` | networked timing service: protocol, cache, admission |
//! | [`lint`] | `rlc-lint` | deck static analysis: stable rule codes, lint gate |
//! | [`audit`] | `rlc-audit` | workspace invariant auditor: determinism, unsafe, schema drift |
//!
//! # Quick start
//!
//! ```
//! use equivalent_elmore::prelude::*;
//!
//! // A 2 mm clock spine splitting into two 1 mm branches.
//! let wire = WireModel::IBM_COPPER_GLOBAL;
//! let mut net = RlcTree::new();
//! let split = wire.route(&mut net, None, 2000.0, 4);
//! let a = wire.route(&mut net, Some(split), 1000.0, 2);
//! let b = wire.route(&mut net, Some(split), 1000.0, 2);
//!
//! let timing = TreeAnalysis::new(&net);
//! let (critical, delay) = timing.critical_sink().expect("net has sinks");
//! assert!(critical == a || critical == b);
//! println!("critical sink delay: {delay}");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment-by-experiment reproduction of the
//! paper's figures.

pub use eed;
pub use rlc_audit as audit;
pub use rlc_awe as awe;
pub use rlc_couple as couple;
pub use rlc_engine as engine;
pub use rlc_lint as lint;
pub use rlc_moments as moments;
pub use rlc_numeric as numeric;
pub use rlc_opt as opt;
pub use rlc_serve as serve;
pub use rlc_sim as sim;
pub use rlc_synth as synth;
pub use rlc_tree as tree;
pub use rlc_units as units;

/// The most common imports, for `use equivalent_elmore::prelude::*`.
pub mod prelude {
    pub use eed::{Damping, SecondOrderModel, TreeAnalysis};
    pub use rlc_couple::{analyze_group, GroupTiming};
    pub use rlc_engine::{Batch, Engine, IncrementalAnalysis};
    pub use rlc_moments::tree_sums;
    pub use rlc_sim::{simulate, SimOptions, Source, Waveform};
    pub use rlc_synth::{synthesize, BufferSpec, SynthConfig, Synthesis};
    pub use rlc_tree::coupled::CoupledGroup;
    pub use rlc_tree::wire::WireModel;
    pub use rlc_tree::{topology, NodeId, RlcSection, RlcTree, TreeBuilder};
    pub use rlc_units::{
        AngularFrequency, Capacitance, Inductance, Resistance, Time, TimeSquared, Voltage,
    };
}
