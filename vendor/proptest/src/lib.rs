//! Offline-compatible subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! This workspace builds in hermetic environments with no access to a crates
//! registry, so the real `proptest` cannot be fetched. This vendored stub
//! implements the exact API surface the workspace's property tests use —
//! the `proptest!` macro, `prop_assert*`/`prop_assume`, range/tuple/`Just`/
//! `prop_oneof!` strategies, `prop_map`, `collection::vec`, `sample::select`,
//! simple regex-pattern string strategies, and `any::<T>()` — with real
//! randomized case generation behind a deterministic PRNG.
//!
//! Differences from upstream proptest, by design:
//!
//! * no shrinking: a failing case panics with the generated inputs instead
//!   of a minimized counterexample;
//! * numeric range strategies sample uniformly (upstream biases toward
//!   boundary/special values);
//! * no persistence of failing seeds. Set `PROPTEST_STUB_SEED` to vary the
//!   base seed.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is re-drawn, not failed.
        Reject(String),
        /// The case failed an assertion; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    /// Mirror of `proptest::test_runner::Config`, reduced to the knobs the
    /// workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Give up if more than `max_global_rejects` cases are rejected.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Deterministic splitmix64-based PRNG used for all case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64 (public-domain reference constants).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    fn base_seed(test_name: &str) -> u64 {
        let env = std::env::var("PROPTEST_STUB_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        // Stable per-test stream: FNV-1a over the test name, mixed with the
        // optional environment seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ env
    }

    /// Drives one `proptest!`-defined test: draws inputs until `cases`
    /// successful executions, re-drawing on `prop_assume` rejections.
    pub fn run_cases(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::seeded(base_seed(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest stub: too many prop_assume rejections in '{name}' \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed (case {passed}, no shrinking): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values. The stub keeps upstream's associated
    /// `Value` type and combinator names so test code compiles unchanged.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// `&str` patterns act as string strategies. Supports the small regex
    /// subset the workspace uses: `.`, `[...]` character classes with
    /// literals and `a-z` ranges, literal characters, and `{n}` / `{n,m}` /
    /// `*` / `+` / `?` quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing backslash in {pattern:?}");
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("quantifier lower bound"),
                        b.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            out.push((atom, lo, hi));
        }
        out
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse_pattern(pattern) {
            let count = lo + rng.below(u64::from(hi - lo + 1)) as u32;
            for _ in 0..count {
                match &atom {
                    Atom::Any => {
                        // Mostly printable ASCII; occasionally whitespace and
                        // non-ASCII to exercise robustness paths.
                        let c = match rng.below(20) {
                            0 => '\t',
                            1 => 'µ',
                            2 => '→',
                            _ => char::from(32 + rng.below(95) as u8),
                        };
                        out.push(c);
                    }
                    Atom::Class(ranges) => {
                        let (lo_c, hi_c) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi_c as u32 - lo_c as u32 + 1;
                        let c = char::from_u32(lo_c as u32 + rng.below(u64::from(span)) as u32)
                            .unwrap_or(lo_c);
                        out.push(c);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Wide-magnitude finite doubles, both signs.
            let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &config, |__stub_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), __stub_rng);)+
                let mut __stub_case = move ||
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __stub_case()
            });
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// `prop_assume!(cond)`: rejects (re-draws) the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..1000 {
            let x = Strategy::generate(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::seeded(11);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9 ]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
        let free = Strategy::generate(&".{0,400}", &mut rng);
        assert!(free.chars().count() <= 400);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_rejects(x in 0.0f64..1.0, k in 1usize..5) {
            prop_assume!(x > 0.05);
            prop_assert!(x < 1.0, "x = {x}");
            prop_assert_eq!(k * 2 / 2, k);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![0.0f64..1.0, Just(5.0)]
            .prop_map(|x| x * 2.0))
        {
            prop_assert!((0.0..2.0).contains(&v) || v == 10.0);
        }
    }
}
