//! Offline-compatible subset of the `loom` concurrency-testing API
//! (vendored stub; the build environment has no registry access).
//!
//! Real loom replaces `std::sync`/`std::thread` with instrumented versions
//! and [`model`] *exhaustively explores* every interleaving the memory
//! model permits. This stub maps the same paths straight back to `std` and
//! [`model`] re-runs the closure many times instead — a stress harness
//! that exercises real (OS-scheduled) interleavings rather than proving
//! all of them. The value of keeping the `loom` surface anyway:
//!
//! * tests written against `loom::sync`/`loom::thread`/`loom::model`
//!   compile unchanged against the real crate, so swapping the stub for
//!   the registry version upgrades the guarantee without touching code;
//! * code under test routes its primitives through the `loom` paths under
//!   `cfg(loom)`, which keeps the model-checkable surface explicit.
//!
//! Implemented subset: [`model`], [`sync`] (re-export of `std::sync`,
//! including `atomic` and `mpsc`), [`thread`] (re-export of
//! `std::thread`). Loom-specific APIs with no `std` analogue
//! (`loom::stop_exploring`, `loom::skip_branch`, …) are not provided.

/// Number of times [`model`] re-runs its closure. The real loom explores
/// until the interleaving space is exhausted; the stub uses repetition
/// (with real threads, so the OS scheduler provides the variety).
pub const STUB_ITERATIONS: usize = 64;

/// Runs `f` repeatedly, propagating the first panic.
///
/// Matches the real signature `loom::model(f)`; see the crate docs for how
/// the stub's guarantee differs.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..STUB_ITERATIONS {
        f();
    }
}

pub mod sync {
    //! Re-export of `std::sync` (real loom substitutes instrumented types).
    pub use std::sync::*;
}

pub mod thread {
    //! Re-export of `std::thread` (real loom substitutes virtual threads).
    pub use std::thread::*;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_closure_repeatedly() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RUNS.load(Ordering::SeqCst), super::STUB_ITERATIONS);
    }

    #[test]
    fn sync_and_thread_reexports_resolve() {
        let counter = Arc::new(AtomicUsize::new(0));
        let clone = Arc::clone(&counter);
        super::thread::spawn(move || {
            clone.fetch_add(1, Ordering::SeqCst);
        })
        .join()
        .expect("thread joins");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
