//! Offline-compatible subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The workspace builds in hermetic environments with no crates registry, so
//! the real `criterion` cannot be fetched. This vendored stub keeps the same
//! bench-definition API (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`) and implements a simple but honest wall-clock harness:
//! per-benchmark warm-up, a fixed measurement budget, and a median-of-batches
//! ns/iter estimate printed to stdout.
//!
//! No statistical analysis, HTML reports, or baseline comparison — the
//! printed `ns/iter` (and derived element throughput) is the deliverable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for API compatibility.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(150);
const BATCHES: usize = 7;

/// Runs closures and reports timing. Construct via `criterion_main!`.
pub struct Criterion {
    /// `--test` mode (used by `cargo test --benches`): run once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, self.test_mode, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A named set of related benchmarks, with optional shared throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's measurement budget is
    /// fixed, so the requested sample count is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, self.criterion.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &label,
            self.throughput,
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units used to derive a throughput figure from the time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the bench closure; call [`iter`](Bencher::iter) with the
/// routine to measure.
pub struct Bencher {
    mode: BenchMode,
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

enum BenchMode {
    /// Run the routine once (`--test`).
    Once,
    Measure,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Once => {
                black_box(routine());
                self.ns_per_iter = f64::NAN;
            }
            BenchMode::Measure => {
                // Warm-up while estimating a batch size that lasts ~1 ms.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < WARMUP || warm_iters == 0 {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
                let batch = ((1.0e6 / per_iter.max(1.0)).ceil() as u64).max(1);

                let budget_per_batch = MEASURE / BATCHES as u32;
                let mut batch_estimates = Vec::with_capacity(BATCHES);
                for _ in 0..BATCHES {
                    let start = Instant::now();
                    let mut iters = 0u64;
                    while iters == 0 || (start.elapsed() < budget_per_batch && iters < batch * 64) {
                        for _ in 0..batch {
                            black_box(routine());
                        }
                        iters += batch;
                    }
                    batch_estimates.push(start.elapsed().as_nanos() as f64 / iters as f64);
                }
                batch_estimates.sort_by(f64::total_cmp);
                self.ns_per_iter = batch_estimates[BATCHES / 2];
            }
        }
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        mode: if test_mode {
            BenchMode::Once
        } else {
            BenchMode::Measure
        },
        ns_per_iter: f64::NAN,
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (test mode, 1 iteration)");
        return;
    }
    let ns = bencher.ns_per_iter;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 / (ns * 1e-9)),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 / (ns * 1e-9)),
    });
    println!(
        "{label}: {} ns/iter{}",
        format_ns(ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.0}", ns)
    } else if ns >= 1e3 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Groups benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_labels() {
        assert_eq!(BenchmarkId::new("line", 64).into_benchmark_id(), "line/64");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }

    #[test]
    fn measure_reports_sane_time() {
        let mut b = Bencher {
            mode: BenchMode::Measure,
            ns_per_iter: f64::NAN,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter >= 0.0);
    }
}
