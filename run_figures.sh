#!/bin/sh
# Regenerates every figure of the paper's evaluation (see EXPERIMENTS.md).
#
# Runs all figure binaries even if some fail, reports the failures at the
# end, and exits non-zero if any binary errored (I/O, untunable sweep, or
# a failed SHAPE-CHECK).
#
# Pass --obs (or set FEATURES="--features obs") to build with the
# instrumentation layer: each binary then writes
# target/figures/<fig>.metrics.json and the metrics_summary aggregator
# produces target/figures/pipeline_summary.json (see DESIGN.md,
# "Observability").

if [ "$1" = "--obs" ]; then
  FEATURES="--features obs"
fi

failed=""
for b in fig06_fit fig07_underdamped fig09_input_shape fig10_ladder \
         fig11_balanced fig12_asymmetry fig13_branching fig14_depth \
         fig15_node_position fig16_large_tree fig_a1_scaling \
         fig_a3_moment_approx fig_a4_model_shootout fig_a5_repeater \
         fig_a6_fidelity; do
  echo "==== $b ===="
  if ! cargo run -p rlc-bench $FEATURES --bin "$b" --release; then
    failed="$failed $b"
  fi
done

if [ -n "$FEATURES" ]; then
  echo "==== metrics_summary ===="
  if ! cargo run -p rlc-bench $FEATURES --bin metrics_summary --release; then
    failed="$failed metrics_summary"
  fi
fi

if [ -n "$failed" ]; then
  echo "FAILED:$failed" >&2
  exit 1
fi
echo "all figures regenerated; CSVs in target/figures/"
