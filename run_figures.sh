#!/bin/sh
# Regenerates every figure of the paper's evaluation (see EXPERIMENTS.md).
set -e
for b in fig06_fit fig07_underdamped fig09_input_shape fig10_ladder \
         fig11_balanced fig12_asymmetry fig13_branching fig14_depth \
         fig15_node_position fig16_large_tree fig_a1_scaling \
         fig_a3_moment_approx fig_a4_model_shootout fig_a5_repeater \
         fig_a6_fidelity; do
  echo "==== $b ===="
  cargo run -p rlc-bench --bin "$b" --release
done
echo "all figures regenerated; CSVs in target/figures/"
